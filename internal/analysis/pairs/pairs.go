// Package pairs is the generalized paired-call engine behind the
// poolbalance and balancegen analyzers: an *acquire* call on a resource
// (sync.Pool.Get, Mutex.Lock, a gauge's Add(1)) must be matched by a
// *release* (Put, Unlock, Add(-1)) on every path out of the function —
// a deferred release anywhere, or a plain release positioned between
// the acquire and each later return.
//
// The engine understands two ownership idioms. Package-level accessor
// functions whose body performs only acquires (or only releases) of one
// resource act as that operation at their call sites — the
// getFlateWriter/putFlateWriter pattern. Local closures do the same
// within their defining function — the `unqueue := func() { ... }`
// pattern the admission queue uses — so a release routed through a
// named cleanup closure still balances the paths that call it. A
// function whose body is internally balanced (both acquires and
// releases) is no accessor at all: it manages the resource itself.
//
// Resources are identified by the variable or field object they live in
// plus a class tag from the classifier, so one object used under two
// disciplines (a RWMutex's Lock and RLock) tracks as two resources.
package pairs

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Kind classifies one call's effect on a resource.
type Kind int

const (
	None Kind = iota
	Acquire
	Release
)

// Res identifies one tracked resource: the object holding it and the
// classifier's class tag (e.g. "pool", "mutex", "gauge").
type Res struct {
	Obj   types.Object
	Class string
}

// Config parameterizes one engine run over a package.
type Config struct {
	Info  *types.Info
	Files []*ast.File

	// Classify resolves one call directly (not through accessors) to a
	// resource and effect; (Res{}, None) for unrelated calls.
	Classify func(call *ast.CallExpr) (Res, Kind)

	// TrackEscapes recognizes the ownership-transfer idiom: an acquire
	// whose result value is returned to the caller is balanced there,
	// not here. True for value-shaped resources (pool objects); false
	// for effect-shaped ones (locks, gauge increments), whose acquire
	// result — if any — carries no ownership.
	TrackEscapes bool

	// Enforce, when non-nil, decides per resource whether unbalanced
	// acquires are reported at all. releasedInPackage tells whether any
	// file of the package releases the resource; balancegen uses it to
	// treat an Add-only atomic as a counter, not a leaking gauge.
	Enforce func(res Res, releasedInPackage bool) bool

	// NeverMsg and DropMsg build the two diagnostics: an acquire with
	// no release anywhere in the function, and a return path that exits
	// between an acquire and its release.
	NeverMsg func(res Res) string
	DropMsg  func(res Res) string

	// Reportf emits one finding.
	Reportf func(pos token.Pos, format string, args ...any)
}

// event is one acquire or release of a resource within a scope.
type event struct {
	res      Res
	pos      token.Pos
	call     *ast.CallExpr
	deferred bool
}

type engine struct {
	cfg Config
	// acquireAcc/releaseAcc: package functions that perform the
	// operation on their caller's behalf (unbalanced bodies only).
	acquireAcc map[types.Object]Res
	releaseAcc map[types.Object]Res
	// released: resources with at least one direct release in the
	// package (accessor bodies included).
	released map[Res]bool
	// localAcc: closure variables of the function under analysis that
	// act as accessors (rebuilt per FuncDecl).
	localAcc map[types.Object]accessor
}

type accessor struct {
	res  Res
	kind Kind
}

// Check runs the engine over every function of the package.
func Check(cfg Config) {
	e := &engine{
		cfg:        cfg,
		acquireAcc: make(map[types.Object]Res),
		releaseAcc: make(map[types.Object]Res),
		released:   make(map[Res]bool),
	}
	e.findAccessors()
	for _, file := range cfg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			e.localAcc = e.closureAccessors(fn.Body)
			e.checkScopes(fn)
		}
	}
}

// directOps tallies the direct (classifier-resolved) operations of one
// body, per resource.
func (e *engine) directOps(body ast.Node) map[Res][2]int {
	ops := make(map[Res][2]int)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		res, kind := e.cfg.Classify(call)
		if kind == None {
			return true
		}
		c := ops[res]
		if kind == Acquire {
			c[0]++
		} else {
			c[1]++
		}
		ops[res] = c
		return true
	})
	return ops
}

// findAccessors records package functions that acquire or release one
// resource on their caller's behalf. Only unbalanced bodies qualify: a
// function performing both operations manages the resource internally,
// and treating its calls as acquires would flag every caller.
func (e *engine) findAccessors() {
	for _, file := range e.cfg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ops := e.directOps(fn.Body)
			for res, c := range ops {
				if c[1] > 0 {
					e.released[res] = true
				}
			}
			obj := e.cfg.Info.Defs[fn.Name]
			if obj == nil || len(ops) != 1 {
				continue
			}
			for res, c := range ops {
				switch {
				case c[0] > 0 && c[1] == 0:
					e.acquireAcc[obj] = res
				case c[1] > 0 && c[0] == 0:
					e.releaseAcc[obj] = res
				}
			}
		}
	}
}

// closureAccessors finds `name := func() { ... }` closures of fn whose
// bodies perform only releases (or only acquires) of one resource, so
// calls through the variable count as that operation.
func (e *engine) closureAccessors(body *ast.BlockStmt) map[types.Object]accessor {
	acc := make(map[types.Object]accessor)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		lit, ok := assign.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		obj := e.objOf(id)
		if obj == nil {
			return true
		}
		ops := e.directOps(lit.Body)
		if len(ops) != 1 {
			return true
		}
		for res, c := range ops {
			switch {
			case c[1] > 0 && c[0] == 0:
				acc[obj] = accessor{res, Release}
			case c[0] > 0 && c[1] == 0:
				acc[obj] = accessor{res, Acquire}
			}
		}
		return true
	})
	return acc
}

// classify resolves call to a (resource, kind) event, following package
// accessors and local closure accessors.
func (e *engine) classify(call *ast.CallExpr) (Res, Kind) {
	if res, kind := e.cfg.Classify(call); kind != None {
		return res, kind
	}
	var callee types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee = e.cfg.Info.Uses[fun]
	case *ast.SelectorExpr:
		callee = e.cfg.Info.Uses[fun.Sel]
	}
	if callee == nil {
		return Res{}, None
	}
	if a, ok := e.localAcc[callee]; ok {
		return a.res, a.kind
	}
	if res, ok := e.acquireAcc[callee]; ok {
		return res, Acquire
	}
	if res, ok := e.releaseAcc[callee]; ok {
		return res, Release
	}
	return Res{}, None
}

// scope is one function-like body's events.
type scope struct {
	acquires []event
	releases []event
	returns  []*ast.ReturnStmt
	// escaped maps acquire calls whose result flows into a return
	// statement: ownership transfers to the caller.
	escaped map[*ast.CallExpr]bool
	nested  []*ast.FuncLit
}

// checkScopes analyzes fn's body and, recursively, every non-deferred
// function literal inside it as an independent scope.
func (e *engine) checkScopes(fn *ast.FuncDecl) {
	bodies := []ast.Node{fn.Body}
	for len(bodies) > 0 {
		body := bodies[0]
		bodies = bodies[1:]
		sc := &scope{escaped: make(map[*ast.CallExpr]bool)}
		e.scan(body, sc, false)
		if e.cfg.TrackEscapes {
			e.markEscapes(sc)
		}
		e.report(sc)
		for _, lit := range sc.nested {
			bodies = append(bodies, lit.Body)
		}
	}
}

// scan walks one scope's statements. Deferred function literals belong
// to the enclosing scope (their releases run at every return); other
// literals are queued as independent scopes.
func (e *engine) scan(n ast.Node, sc *scope, inDefer bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				e.scan(lit.Body, sc, true)
			} else if res, kind := e.classify(x.Call); kind == Release {
				sc.releases = append(sc.releases, event{res: res, pos: x.Pos(), deferred: true})
			}
			for _, arg := range x.Call.Args {
				e.scan(arg, sc, inDefer)
			}
			return false
		case *ast.FuncLit:
			sc.nested = append(sc.nested, x)
			return false
		case *ast.ReturnStmt:
			if !inDefer {
				sc.returns = append(sc.returns, x)
			}
			return true
		case *ast.CallExpr:
			res, kind := e.classify(x)
			switch kind {
			case Acquire:
				sc.acquires = append(sc.acquires, event{res: res, pos: x.Pos(), call: x})
			case Release:
				sc.releases = append(sc.releases, event{res: res, pos: x.Pos(), deferred: inDefer})
			}
			return true
		}
		return true
	})
}

// markEscapes finds acquires whose object is handed to the caller: the
// acquire appears inside a return statement, or its assigned variable
// is mentioned by one. Those transfers are the accessor idiom, balanced
// at the call site instead.
func (e *engine) markEscapes(sc *scope) {
	returned := make(map[types.Object]bool)
	inReturn := make(map[*ast.CallExpr]bool)
	for _, ret := range sc.returns {
		ast.Inspect(ret, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if obj := e.cfg.Info.Uses[x]; obj != nil {
					returned[obj] = true
				}
			case *ast.CallExpr:
				inReturn[x] = true
			}
			return true
		})
	}
	for _, g := range sc.acquires {
		if inReturn[g.call] {
			sc.escaped[g.call] = true
			continue
		}
		for _, obj := range e.destsOf(g.call) {
			if returned[obj] {
				sc.escaped[g.call] = true
				break
			}
		}
	}
}

// destsOf finds the variables an expression's value is assigned to by
// locating the assignment statement containing the call.
func (e *engine) destsOf(call *ast.CallExpr) []types.Object {
	var dests []types.Object
	for _, file := range e.cfg.Files {
		if call.Pos() < file.Pos() || call.Pos() > file.End() {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || call.Pos() < assign.Pos() || call.Pos() > assign.End() {
				return true
			}
			contained := false
			for _, rhs := range assign.Rhs {
				ast.Inspect(rhs, func(n ast.Node) bool {
					if n == ast.Node(call) {
						contained = true
					}
					return !contained
				})
			}
			if !contained {
				return true
			}
			for _, lhs := range assign.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := e.objOf(id); obj != nil {
						dests = append(dests, obj)
					}
				}
			}
			return true
		})
	}
	return dests
}

func (e *engine) objOf(id *ast.Ident) types.Object {
	if obj := e.cfg.Info.Defs[id]; obj != nil {
		return obj
	}
	return e.cfg.Info.Uses[id]
}

// report flags each acquire that some return path exits without a
// release.
func (e *engine) report(sc *scope) {
	for _, g := range sc.acquires {
		if sc.escaped[g.call] {
			continue
		}
		if e.cfg.Enforce != nil && !e.cfg.Enforce(g.res, e.released[g.res]) {
			continue
		}
		if e.hasDeferredRelease(sc, g.res) {
			continue
		}
		anyRelease := false
		for _, p := range sc.releases {
			if p.res == g.res {
				anyRelease = true
			}
		}
		if !anyRelease {
			e.cfg.Reportf(g.pos, "%s", e.cfg.NeverMsg(g.res))
			continue
		}
		for _, ret := range sc.returns {
			if ret.Pos() < g.pos {
				continue
			}
			covered := false
			for _, p := range sc.releases {
				if p.res == g.res && p.pos > g.pos && p.pos < ret.Pos() {
					covered = true
					break
				}
			}
			if !covered {
				e.cfg.Reportf(ret.Pos(), "%s", e.cfg.DropMsg(g.res))
			}
		}
	}
}

func (e *engine) hasDeferredRelease(sc *scope, res Res) bool {
	for _, p := range sc.releases {
		if p.deferred && p.res == res {
			return true
		}
	}
	return false
}
