package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"classpack/internal/analysis"
)

// TestTreeIsVetClean is the regression gate behind `make lint`: the
// whole module must stay free of classpack-vet findings. A failure here
// means a decoder-safety invariant was broken (or a new intentional
// exception is missing its //classpack:vet-allow directive and reason).
func TestTreeIsVetClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	diags, err := analysis.Vet(root)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	analysis.TrimDiagnosticPaths(diags, root)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
