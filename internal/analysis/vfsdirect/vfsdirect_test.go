package vfsdirect_test

import (
	"testing"

	"classpack/internal/analysis/analysistest"
	"classpack/internal/analysis/vfsdirect"
)

func TestVfsdirect(t *testing.T) {
	analysistest.Run(t, "testdata", vfsdirect.Analyzer, "vfsdirect")
}
