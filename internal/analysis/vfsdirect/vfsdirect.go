// Package vfsdirect implements the vfsdirect analyzer: castore's write
// path must reach the disk through the internal/vfs seam, never through
// the os package directly. The seam is what the CrashFS fault drills
// interpose on — an os.Create or os.Rename snuck into the store writes
// real files that no drill can truncate, reorder, or fail, so the
// crash-safety tests silently stop covering that code. Reads are
// exempt: the drills only model write/rename/sync faults, and the
// store's read path deliberately goes straight to the os package.
package vfsdirect

import (
	"go/ast"
	"go/types"

	"classpack/internal/analysis/framework"
)

// Analyzer flags direct os-package mutation calls on the store's write
// path.
var Analyzer = &framework.Analyzer{
	Name: "vfsdirect",
	Doc:  "report direct os mutation calls in castore that bypass the vfs fault-injection seam",
	Run:  run,
}

// mutators are the os functions that change the file system. Anything
// absent (Open, ReadFile, Stat, WalkDir...) is read-only and allowed.
var mutators = map[string]bool{
	"Create":     true,
	"CreateTemp": true,
	"OpenFile":   true,
	"Mkdir":      true,
	"MkdirAll":   true,
	"MkdirTemp":  true,
	"Rename":     true,
	"Remove":     true,
	"RemoveAll":  true,
	"Chmod":      true,
	"Chtimes":    true,
	"Truncate":   true,
	"WriteFile":  true,
	"Link":       true,
	"Symlink":    true,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !mutators[sel.Sel.Name] {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "os" {
				return true
			}
			pass.Reportf(call.Pos(),
				"os.%s bypasses the vfs seam: route writes through the store's vfs.FS so crash drills cover them",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
