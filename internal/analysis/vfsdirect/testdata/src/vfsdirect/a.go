// Fixture for the vfsdirect analyzer: mutation must go through the vfs
// seam; reads may use the os package directly.
package fixture

import (
	"os"

	"classpack/internal/vfs"
)

type store struct {
	fs  vfs.FS
	dir string
}

// WriteThroughSeam is the blessed shape; no finding.
func WriteThroughSeam(s *store, final string, data []byte) error {
	f, err := s.fs.CreateTemp(s.dir, "obj-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return s.fs.Rename(f.Name(), final)
}

// DirectCreate writes a real file no crash drill can fail.
func DirectCreate(path string, data []byte) error {
	f, err := os.Create(path) // want `os\.Create bypasses the vfs seam`
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	f.Close()
	return err
}

// DirectRename commits outside the seam.
func DirectRename(tmp, final string) error {
	return os.Rename(tmp, final) // want `os\.Rename bypasses the vfs seam`
}

// ReadsAreFine: the drills model write faults only; no finding.
func ReadsAreFine(path string) ([]byte, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// AllowedBootstrap documents a deliberate bypass; no finding.
func AllowedBootstrap(dir string) error {
	//classpack:vet-allow vfsdirect fixture: store root is created before any drill attaches
	return os.MkdirAll(dir, 0o755)
}
