// Package guardedfield implements the guardedfield analyzer: a struct
// field must be accessed under one discipline. A field touched through
// the raw sync/atomic functions (atomic.LoadInt64(&s.f)) in one place
// and plainly (s.f) in another is a data race the moment both run; a
// field accessed atomically in one method and under a mutex in another
// is two disciplines that do not compose — the mutex holder's
// read-modify-write is not atomic to the Load/Store side.
//
// The typed atomics (atomic.Int64, atomic.Bool) are immune by
// construction — the type system already forces every access through
// the atomic API — which is exactly why the daemon layer uses them.
// This analyzer exists to keep the raw-functions-plus-plain-access
// hybrid from ever getting back in. The guard package's lock lattice
// distinguishes the two diagnostics: a plain access under a held mutex
// gets the mixed-discipline message, a bare one the race message.
package guardedfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"classpack/internal/analysis/framework"
	"classpack/internal/analysis/guard"
)

// Analyzer flags struct fields accessed both atomically and plainly.
var Analyzer = &framework.Analyzer{
	Name: "guardedfield",
	Doc:  "report struct fields accessed both via raw sync/atomic functions and plainly (or under a mutex)",
	Run:  run,
}

// atomicPrefixes are the raw sync/atomic function families; the
// function's first &-argument names the field placed under the atomic
// discipline.
var atomicPrefixes = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap"}

func run(pass *framework.Pass) error {
	// Pass 1: every field object that some raw atomic call addresses,
	// plus the selector nodes inside those calls (they are the atomic
	// accesses, not violations).
	atomicFields := make(map[types.Object]bool)
	inAtomicCall := make(map[*ast.SelectorExpr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRawAtomic(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj := pass.Info.Uses[sel.Sel]; obj != nil && isField(obj) {
					atomicFields[obj] = true
					inAtomicCall[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: plain accesses of those fields, classified by the lock
	// lattice of their enclosing function.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			facts := guard.Analyze(pass.Info, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || inAtomicCall[sel] {
					return true
				}
				obj := pass.Info.Uses[sel.Sel]
				if obj == nil || !atomicFields[obj] {
					return true
				}
				if facts.AnyHeldAt(sel.Pos()) {
					pass.Reportf(sel.Pos(),
						"field %s is accessed atomically elsewhere but under a mutex here: two disciplines that do not compose — pick one",
						obj.Name())
				} else {
					pass.Reportf(sel.Pos(),
						"field %s is accessed atomically elsewhere but plainly here: racy unless every access goes through sync/atomic",
						obj.Name())
				}
				return true
			})
		}
	}
	return nil
}

// isRawAtomic reports whether call invokes a package-level sync/atomic
// function of one of the Load/Store/Add/Swap/CompareAndSwap families.
func isRawAtomic(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.Uses[id].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "sync/atomic" {
		return false
	}
	for _, p := range atomicPrefixes {
		if len(sel.Sel.Name) > len(p) && sel.Sel.Name[:len(p)] == p {
			return true
		}
	}
	return false
}

// isField reports whether obj is a struct field.
func isField(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.IsField()
}
