// Fixture for the guardedfield analyzer: a field accessed through the
// raw sync/atomic functions must not also be accessed plainly or under
// a mutex.
package fixture

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	mu      sync.Mutex
	hits    int64
	misses  int64
	typed   atomic.Int64
	plainly int64
}

// RecordHit uses the raw atomic discipline on hits.
func RecordHit(c *counters) {
	atomic.AddInt64(&c.hits, 1)
}

// SnapshotRacy reads hits plainly: racy against RecordHit.
func SnapshotRacy(c *counters) int64 {
	return c.hits // want `field hits is accessed atomically elsewhere but plainly here`
}

// RecordMiss mixes disciplines: misses is written atomically here and
// read under the mutex in SnapshotGuarded.
func RecordMiss(c *counters) {
	atomic.AddInt64(&c.misses, 1)
}

// SnapshotGuarded holds the mutex while reading misses, but the mutex
// does not exclude RecordMiss's atomic add.
func SnapshotGuarded(c *counters) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.misses // want `field misses is accessed atomically elsewhere but under a mutex here`
	return v
}

// TypedAtomicIsFine: the typed atomic forces every access through the
// API; no finding.
func TypedAtomicIsFine(c *counters) int64 {
	c.typed.Add(1)
	return c.typed.Load()
}

// PlainOnlyIsFine: a field never touched atomically has one discipline
// already; no finding.
func PlainOnlyIsFine(c *counters) int64 {
	c.plainly++
	return c.plainly
}

// AllowedInit documents a pre-publication plain write; no finding.
func AllowedInit() *counters {
	c := &counters{}
	//classpack:vet-allow guardedfield fixture: no other goroutine can see c before it is returned
	c.hits = 0
	return c
}
