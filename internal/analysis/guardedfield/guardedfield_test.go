package guardedfield_test

import (
	"testing"

	"classpack/internal/analysis/analysistest"
	"classpack/internal/analysis/guardedfield"
)

func TestGuardedfield(t *testing.T) {
	analysistest.Run(t, "testdata", guardedfield.Analyzer, "guardedfield")
}
