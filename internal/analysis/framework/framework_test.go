package framework

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// markerAnalyzer reports every call to a function named "flagme", so
// tests can place findings precisely.
var markerAnalyzer = &Analyzer{
	Name: "marker",
	Doc:  "test analyzer: flags calls to flagme",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flagme" {
					pass.Reportf(call.Pos(), "flagme called")
				}
				return true
			})
		}
		return nil
	},
}

// loadSrc type-checks one synthetic file as its own package.
func loadSrc(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	root, err := moduleRootFromWd()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(dir, "classpack-vet/framework-test")
	if err != nil {
		t.Fatalf("loading synthetic package: %v", err)
	}
	return pkg
}

func moduleRootFromWd() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}

func messages(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Analyzer+": "+d.Message)
	}
	return out
}

// TestUsedAllowSuppresses pins the baseline: a directive with a reason
// on the flagged line suppresses the finding and is not reported stale.
func TestUsedAllowSuppresses(t *testing.T) {
	pkg := loadSrc(t, `package p
func flagme() {}
func f() {
	//classpack:vet-allow marker the test wants this one suppressed
	flagme()
}
`)
	diags, err := Run(pkg, []*Analyzer{markerAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("want no diagnostics, got %q", messages(diags))
	}
}

// TestUnusedAllowReported pins the staleness check: a directive that
// suppresses nothing is itself a finding.
func TestUnusedAllowReported(t *testing.T) {
	pkg := loadSrc(t, `package p
func fine() {}
func f() {
	//classpack:vet-allow marker nothing here fires anymore
	fine()
}
`)
	diags, err := Run(pkg, []*Analyzer{markerAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "vetdirective" ||
		!strings.Contains(diags[0].Message, `unused vet-allow directive for "marker"`) {
		t.Errorf("want one unused-directive diagnostic, got %q", messages(diags))
	}
	if len(diags) == 1 && diags[0].Pos.Line != 4 {
		t.Errorf("diagnostic should anchor at the directive (line 4), got line %d", diags[0].Pos.Line)
	}
}

// TestUnusedAllowForInactiveAnalyzerIgnored: a directive naming an
// analyzer that did not run on this package is not judged stale — the
// driver's package gating decides where each analyzer runs.
func TestUnusedAllowForInactiveAnalyzerIgnored(t *testing.T) {
	pkg := loadSrc(t, `package p
func f() {
	//classpack:vet-allow someother this analyzer is gated off here
	_ = 1
}
`)
	diags, err := Run(pkg, []*Analyzer{markerAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("want no diagnostics for inactive-analyzer directive, got %q", messages(diags))
	}
}

// TestMissingReasonReported: a directive without a reason is reported
// and does not suppress (nor count as stale — it never became a span).
func TestMissingReasonReported(t *testing.T) {
	pkg := loadSrc(t, `package p
func flagme() {}
func f() {
	//classpack:vet-allow marker
	flagme()
}
`)
	diags, err := Run(pkg, []*Analyzer{markerAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	var sawMissing, sawFinding bool
	for _, d := range diags {
		if d.Analyzer == "vetdirective" && strings.Contains(d.Message, "missing its reason") {
			sawMissing = true
		}
		if d.Analyzer == "marker" {
			sawFinding = true
		}
	}
	if !sawMissing || !sawFinding || len(diags) != 2 {
		t.Errorf("want missing-reason + unsuppressed finding, got %q", messages(diags))
	}
}

// TestDocCommentAllowCoversDecl: a doc-comment directive spans its whole
// declaration and is used if the analyzer fires anywhere inside.
func TestDocCommentAllowCoversDecl(t *testing.T) {
	pkg := loadSrc(t, `package p
func flagme() {}

// f exercises the declaration-scoped form.
//classpack:vet-allow marker the whole function is excused
func f() {
	if true {
		flagme()
	}
}
`)
	diags, err := Run(pkg, []*Analyzer{markerAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("want no diagnostics, got %q", messages(diags))
	}
}
