// Package framework is a self-contained driver for classpack's custom
// static analyses, mirroring the shape of golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) on top of the standard library's
// go/parser and go/types only, so the vet suite builds without any
// module dependency. Analyzers written against it port to the upstream
// API mechanically if the dependency ever becomes available.
//
// The framework also owns the suppression mechanism shared by every
// analyzer: a diagnostic is suppressed by a
//
//	//classpack:vet-allow <analyzer> <reason>
//
// comment on the flagged line, on the line directly above it, or in the
// doc comment of the enclosing top-level declaration (which suppresses
// the analyzer for that whole declaration). The reason is mandatory: a
// directive without one is itself reported, so every suppression in the
// tree documents why the invariant provably holds. A directive that no
// longer suppresses anything is reported too — stale allows rot
// silently, hiding the moment the code they excused was deleted or the
// analyzer stopped firing there.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Analyzer is one named static analysis.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //classpack:vet-allow directives.
	Name string
	// Doc is the one-paragraph description printed by classpack-vet -help.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, located in file coordinates.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// AllowDirective is the comment prefix that suppresses a finding.
const AllowDirective = "//classpack:vet-allow"

var directiveRE = regexp.MustCompile(`^//classpack:vet-allow\s+(\S+)(?:\s+(.*))?$`)

// allowSpan is one directive's scope: lines [from, to] of one file are
// exempt from the named analyzer.
type allowSpan struct {
	analyzer string
	from, to int
	pos      token.Position // the directive comment itself, for staleness reports
	used     bool           // set once the span suppresses a diagnostic
}

// collectAllows gathers the directive spans of one file. Directives with
// a missing reason are reported as findings of the pseudo-analyzer
// "vetdirective" so suppressions cannot silently lose their rationale.
func collectAllows(fset *token.FileSet, file *ast.File, report func(Diagnostic)) []*allowSpan {
	var spans []*allowSpan
	directiveAt := map[int]bool{} // lines holding a directive comment

	addDirective := func(c *ast.Comment, from, to int) {
		m := directiveRE.FindStringSubmatch(c.Text)
		if m == nil {
			return
		}
		line := fset.Position(c.Pos()).Line
		directiveAt[line] = true
		if strings.TrimSpace(m[2]) == "" {
			report(Diagnostic{
				Analyzer: "vetdirective",
				Pos:      fset.Position(c.Pos()),
				Message:  fmt.Sprintf("vet-allow directive for %q is missing its reason", m[1]),
			})
			return
		}
		spans = append(spans, &allowSpan{analyzer: m[1], from: from, to: to, pos: fset.Position(c.Pos())})
	}

	// Doc-comment directives cover their whole declaration.
	for _, decl := range file.Decls {
		var doc *ast.CommentGroup
		switch d := decl.(type) {
		case *ast.FuncDecl:
			doc = d.Doc
		case *ast.GenDecl:
			doc = d.Doc
		}
		if doc == nil {
			continue
		}
		from := fset.Position(decl.Pos()).Line
		to := fset.Position(decl.End()).Line
		for _, c := range doc.List {
			addDirective(c, from, to)
		}
	}
	// Every other directive covers its own line and the next one (the
	// usual "comment above the flagged statement" placement).
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			line := fset.Position(c.Pos()).Line
			if directiveAt[line] {
				continue // already handled as a doc comment
			}
			addDirective(c, line, line+1)
		}
	}
	return spans
}

// allowed reports whether d falls inside a matching directive span,
// marking the span used so staleness can be reported for the rest.
func allowed(spans []*allowSpan, d Diagnostic) bool {
	hit := false
	for _, s := range spans {
		if s.analyzer == d.Analyzer && d.Pos.Line >= s.from && d.Pos.Line <= s.to {
			s.used = true
			hit = true
			// Keep scanning: overlapping spans for the same analyzer
			// (line directive inside an allowed declaration) are all
			// exercised by this diagnostic.
		}
	}
	return hit
}

// Run executes the analyzers over pkg and returns the surviving
// diagnostics, sorted by position. Directive suppression is applied
// here so every analyzer gets it uniformly.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunTimed(pkg, analyzers, nil)
}

// RunTimed is Run with per-analyzer wall-time accounting: when timings
// is non-nil, each analyzer's duration over this package is added to its
// entry. cmd/classpack-vet sums these across packages for the lint-time
// budget report.
func RunTimed(pkg *Package, analyzers []*Analyzer, timings map[string]time.Duration) ([]Diagnostic, error) {
	var raw []Diagnostic
	collect := func(d Diagnostic) { raw = append(raw, d) }

	var spans []*allowSpan
	for _, f := range pkg.Files {
		spans = append(spans, collectAllows(pkg.Fset, f, collect)...)
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			report:   collect,
		}
		start := time.Now()
		err := a.Run(pass)
		if timings != nil {
			timings[a.Name] += time.Since(start)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	var out []Diagnostic
	for _, d := range raw {
		if !allowed(spans, d) {
			out = append(out, d)
		}
	}
	// A span no diagnostic landed in is stale: either the code it
	// excused is gone or the analyzer no longer fires there. Only spans
	// for analyzers that actually ran are judged — a directive for a
	// gated-off analyzer is that driver run's business, not this one's.
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, s := range spans {
		if !s.used && ran[s.analyzer] {
			out = append(out, Diagnostic{
				Analyzer: "vetdirective",
				Pos:      s.pos,
				Message: fmt.Sprintf("unused vet-allow directive for %q: no %s finding here — delete the stale suppression",
					s.analyzer, s.analyzer),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return out, nil
}
