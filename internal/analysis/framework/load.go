package framework

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("classpack/internal/streams")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module without the go
// toolchain's package driver: module packages are resolved by path
// inside the module directory and type-checked recursively; standard
// library imports are type-checked from $GOROOT source. Everything is
// cached, so a whole-tree scan type-checks each package (and the stdlib
// closure) once.
type Loader struct {
	Fset *token.FileSet

	moduleDir  string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package
	loading    map[string]bool
}

// NewLoader builds a loader for the module rooted at moduleDir (the
// directory holding go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modulePath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		moduleDir:  abs,
		modulePath: modulePath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// ModulePath returns the module's import path prefix.
func (l *Loader) ModulePath() string { return l.modulePath }

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// Import implements types.Importer, routing module-local paths to the
// loader itself and everything else to the source-based stdlib importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.moduleRelDir(path); ok {
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// moduleRelDir maps a module-local import path to its directory.
func (l *Loader) moduleRelDir(path string) (string, bool) {
	if path == l.modulePath {
		return l.moduleDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleDir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Load parses and type-checks the package with the given module-local
// import path.
func (l *Loader) Load(path string) (*Package, error) {
	dir, ok := l.moduleRelDir(path)
	if !ok {
		return nil, fmt.Errorf("%s is not in module %s", path, l.modulePath)
	}
	return l.load(path, dir)
}

// LoadDir parses and type-checks the package in dir under a synthetic
// import path. It is how analysis test fixtures — directories outside
// the module's package tree — are loaded; their imports of module
// packages still resolve through the loader.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(asPath, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := &types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// goFilesIn lists the non-test Go files of dir, sorted for determinism.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadAll loads every package of the module: each directory under the
// module root holding non-test Go files, skipping testdata, hidden, and
// underscore-prefixed trees. Packages are returned sorted by path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.moduleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.moduleDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goFilesIn(p)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.moduleDir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.modulePath)
		} else {
			paths = append(paths, l.modulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, path := range paths {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
