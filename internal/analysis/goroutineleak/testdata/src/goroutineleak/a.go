// Fixture for the goroutineleak analyzer: goroutines launched in the
// daemon layer must be able to terminate.
package fixture

import (
	"context"
	"time"
)

// LeakyTicker spins forever: no return, no break, nothing to stop it.
func LeakyTicker(interval time.Duration) {
	go func() { // want `goroutine runs an unbounded for-loop with no return or break`
		for {
			time.Sleep(interval)
		}
	}()
}

// CtxBound exits through the ctx.Done arm; no finding.
func CtxBound(ctx context.Context, interval time.Duration) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
		}
	}()
}

// RangeOverChannel drains until close; no finding.
func RangeOverChannel(work chan int) {
	go func() {
		for w := range work {
			_ = w
		}
	}()
}

// namedWorker loops forever with no exit.
func namedWorker(ch chan int) {
	for {
		ch <- 1
	}
}

// LaunchNamed launches a same-package function; the analyzer follows
// the name to its body.
func LaunchNamed(ch chan int) {
	go namedWorker(ch) // want `goroutine runs an unbounded for-loop with no return or break`
}

// NoLoop runs once and exits; no finding.
func NoLoop(done chan struct{}) {
	go func() {
		done <- struct{}{}
	}()
}

// InnerExitDoesNotCount: the return inside the nested literal leaves
// that literal, not the goroutine's loop.
func InnerExitDoesNotCount(fns chan func()) {
	go func() { // want `goroutine runs an unbounded for-loop with no return or break`
		for {
			f := func() { return }
			f()
		}
	}()
}

// AllowedForever documents a deliberately process-lifetime goroutine.
func AllowedForever() {
	//classpack:vet-allow goroutineleak fixture: lives for the whole process on purpose
	go func() {
		for {
			time.Sleep(time.Hour)
		}
	}()
}
