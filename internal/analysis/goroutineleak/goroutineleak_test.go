package goroutineleak_test

import (
	"testing"

	"classpack/internal/analysis/analysistest"
	"classpack/internal/analysis/goroutineleak"
)

func TestGoroutineleak(t *testing.T) {
	analysistest.Run(t, "testdata", goroutineleak.Analyzer, "goroutineleak")
}
