// Package goroutineleak implements the goroutineleak analyzer: a
// goroutine launched in the daemon layer must have a termination path.
// The daemon runs for weeks; a background loop with no way out survives
// drain, pins its captures, and turns every config reload into a slow
// leak.
//
// The check is structural, tuned for zero false negatives on the shapes
// the tree uses: a goroutine body (function literal, or a same-package
// function the `go` statement names) terminates if every loop in it can
// exit. `for range ch` exits when the channel closes; a conditioned
// `for cond {}` exits when the condition falls; an unconditioned
// `for {}` must contain a return or break on the calling goroutine —
// typically the `case <-ctx.Done(): return` arm of its select. An
// unconditioned loop with neither is reported at the `go` statement.
// Exits inside nested function literals or nested `go` statements do
// not count: they leave some other frame.
package goroutineleak

import (
	"go/ast"
	"go/token"

	"classpack/internal/analysis/callgraph"
	"classpack/internal/analysis/framework"
)

// Analyzer flags go statements whose body can never terminate.
var Analyzer = &framework.Analyzer{
	Name: "goroutineleak",
	Doc:  "report go statements launching loops with no termination path (no return or break)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	graph := callgraph.Build(pass.Files, pass.Info)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			if lit, isLit := g.Call.Fun.(*ast.FuncLit); isLit {
				body = lit.Body
			} else if callee := callgraph.CalleeOf(pass.Info, g.Call); callee != nil {
				if decl, local := graph.Decls[callee]; local {
					body = decl.Body
				}
			}
			if body == nil {
				return true // cross-package target: nothing to inspect
			}
			checkBody(pass, g, body)
			return true
		})
	}
	return nil
}

// checkBody reports every unconditioned loop in a goroutine body that
// has no return or break of its own.
func checkBody(pass *framework.Pass, g *ast.GoStmt, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			// Nested goroutines are their own launch sites; range loops
			// exit when the range (a closed channel, a slice) ends.
			_, isGo := n.(*ast.GoStmt)
			return !isGo
		}
		if loop.Cond != nil {
			return true
		}
		if hasExit(loop.Body) {
			return true
		}
		pass.Reportf(g.Pos(),
			"goroutine runs an unbounded for-loop with no return or break: tie its termination to ctx.Done, drain, or Close")
		return true
	})
}

// hasExit reports whether body contains a return or break that executes
// on this goroutine's frame (not inside a nested function literal or
// nested go statement).
func hasExit(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if x.Tok == token.BREAK || x.Tok == token.GOTO {
				found = true
			}
		}
		return true
	})
	return found
}
