package nopanic_test

import (
	"testing"

	"classpack/internal/analysis/analysistest"
	"classpack/internal/analysis/nopanic"
)

func TestNopanic(t *testing.T) {
	analysistest.Run(t, "testdata", nopanic.Analyzer, "nopanic")
}
