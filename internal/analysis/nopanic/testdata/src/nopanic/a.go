// Fixture for the nopanic analyzer: decode-path code must not panic,
// assert without the comma-ok form, or index by unbounded decoded input.
package fixture

import "classpack/internal/encoding/varint"

// Explode panics outright.
func Explode() {
	panic("boom") // want `panic on the decode path`
}

// HardAssert uses the single-result assertion form.
func HardAssert(x any) int {
	return x.(int) // want `single-result type assertion can panic`
}

// SoftAssert uses the comma-ok form; no finding.
func SoftAssert(x any) int {
	v, ok := x.(int)
	if !ok {
		return -1
	}
	return v
}

// SwitchAssert type-switches; no finding.
func SwitchAssert(x any) int {
	switch v := x.(type) {
	case int:
		return v
	default:
		return -1
	}
}

// DecodedIndex indexes a table by an unbounded decoded value.
func DecodedIndex(data []byte, table []string) string {
	n, _, _ := varint.Uint(data)
	return table[n] // want `index n derives from decoded input with no bound check before use`
}

// GuardedIndex bounds the decoded value first; no finding.
func GuardedIndex(data []byte, table []string) string {
	n, _, _ := varint.Uint(data)
	if n >= uint64(len(table)) {
		return ""
	}
	return table[n]
}

// AllowedPanic proves unreachability with a directive; no finding.
//
//classpack:vet-allow nopanic fixture: unreachable by construction
func AllowedPanic() {
	panic("cannot happen")
}
