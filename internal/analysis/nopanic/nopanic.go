// Package nopanic implements the nopanic analyzer: code on the decode
// path must not be able to panic on attacker-controlled input.
//
// Three panic vectors are flagged in the packages the driver gates
// this analyzer to (the decode stack: core, streams, refs, mtf, jazz,
// custom, classfile, bytecode, stackstate):
//
//   - explicit panic calls — decoders return *corrupt.Error instead;
//     encoder-side programmer-error panics are suppressed with a
//     //classpack:vet-allow nopanic <reason> directive stating why
//     decoded data cannot reach them;
//   - single-result type assertions x.(T), which panic on mismatch
//     (the v, ok := x.(T) form and type switches are fine);
//   - slice/array indexing whose index derives from decoded input with
//     no bound established first (shared taint engine with
//     decodebound).
package nopanic

import (
	"go/ast"
	"go/types"

	"classpack/internal/analysis/framework"
	"classpack/internal/analysis/taint"
)

// Analyzer flags panic vectors on the decode path.
var Analyzer = &framework.Analyzer{
	Name: "nopanic",
	Doc: "report panic calls, single-result type assertions, and decoded-" +
		"index slice accesses in decode-path packages",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		safeAsserts := commaOkAsserts(file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, safeAsserts)
		}
	}
	return nil
}

// commaOkAsserts collects the type assertions that cannot panic: the
// two-value assignment form and the scrutinee of a type switch.
func commaOkAsserts(file *ast.File) map[*ast.TypeAssertExpr]bool {
	safe := make(map[*ast.TypeAssertExpr]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == 2 && len(st.Rhs) == 1 {
				if ta, ok := st.Rhs[0].(*ast.TypeAssertExpr); ok {
					safe[ta] = true
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == 2 && len(st.Values) == 1 {
				if ta, ok := st.Values[0].(*ast.TypeAssertExpr); ok {
					safe[ta] = true
				}
			}
		case *ast.TypeSwitchStmt:
			ast.Inspect(st.Assign, func(n ast.Node) bool {
				if ta, ok := n.(*ast.TypeAssertExpr); ok {
					safe[ta] = true
				}
				return true
			})
		}
		return true
	})
	return safe
}

func checkFunc(pass *framework.Pass, fn *ast.FuncDecl, safeAsserts map[*ast.TypeAssertExpr]bool) {
	tf := taint.Analyze(pass.Info, fn.Body, taint.DecodeSources)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					pass.Reportf(x.Pos(),
						"panic on the decode path; return a *corrupt.Error (or prove unreachability with a vet-allow directive)")
				}
			}
		case *ast.TypeAssertExpr:
			if x.Type != nil && !safeAsserts[x] {
				pass.Reportf(x.Pos(),
					"single-result type assertion can panic; use the v, ok := x.(T) form")
			}
		case *ast.IndexExpr:
			if !indexable(pass.Info, x.X) {
				return true
			}
			if tf.TaintedAt(x.Index) {
				pass.Reportf(x.Index.Pos(),
					"index %s derives from decoded input with no bound check before use",
					types.ExprString(x.Index))
			}
		}
		return true
	})
}

// indexable reports whether e is a slice or array (map and generic
// indexing cannot panic from an out-of-range index the same way).
func indexable(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, isArray := t.Elem().Underlying().(*types.Array)
		return isArray
	}
	return false
}
