// Package guard is the flow-sensitive "guarded access" lattice layered
// beside the taint engine: for one function body it computes, per source
// position, which mutexes are held. The guardedfield analyzer uses it to
// tell a mutex-protected field access from a bare one.
//
// The model matches the tree's locking idiom rather than full dataflow:
// a mutex is held from a Lock/RLock call to the position of the nearest
// later Unlock/RUnlock of the same mutex — or to the end of the function
// when the unlock is deferred (or missing; balancegen owns *that*
// finding). Mutexes are identified by the variable or field object they
// live in, so `s.mu` in two methods of the same receiver is one mutex
// as far as one body's facts are concerned.
package guard

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Facts holds the held-mutex intervals of one function body.
type Facts struct {
	spans []lockSpan
}

type lockSpan struct {
	mutex    types.Object
	from, to token.Pos
}

// Analyze computes lock facts for one function body (nil-safe).
func Analyze(info *types.Info, body *ast.BlockStmt) *Facts {
	f := &Facts{}
	if body == nil {
		return f
	}
	type ev struct {
		mutex    types.Object
		pos      token.Pos
		deferred bool
	}
	var locks, unlocks []ev
	ast.Inspect(body, func(n ast.Node) bool {
		inDefer := false
		call, ok := n.(*ast.CallExpr)
		if !ok {
			if d, isDefer := n.(*ast.DeferStmt); isDefer {
				call, inDefer = d.Call, true
			} else {
				return true
			}
		}
		if m, locking := MutexOp(info, call); m != nil {
			if locking {
				locks = append(locks, ev{m, call.Pos(), inDefer})
			} else {
				unlocks = append(unlocks, ev{m, call.Pos(), inDefer})
			}
		}
		return true
	})
	for _, l := range locks {
		end := body.End()
		deferredUnlock := false
		for _, u := range unlocks {
			if u.mutex == l.mutex && u.deferred {
				deferredUnlock = true
				break
			}
		}
		if !deferredUnlock {
			for _, u := range unlocks {
				if u.mutex == l.mutex && u.pos > l.pos && u.pos < end {
					end = u.pos
				}
			}
		}
		f.spans = append(f.spans, lockSpan{l.mutex, l.pos, end})
	}
	return f
}

// MutexOp resolves call to a sync.Mutex/sync.RWMutex lock or unlock
// operation, returning the mutex's variable/field object and whether it
// acquires (Lock/RLock) rather than releases (Unlock/RUnlock).
func MutexOp(info *types.Info, call *ast.CallExpr) (mutex types.Object, locking bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locking = true
	case "Unlock", "RUnlock":
	default:
		return nil, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil, false
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return nil, false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return nil, false
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return info.Uses[x], locking
	case *ast.SelectorExpr:
		return info.Uses[x.Sel], locking
	}
	return nil, false
}

// HeldAt reports the mutexes held at pos (possibly empty, never nil
// semantics callers depend on — just range over it).
func (f *Facts) HeldAt(pos token.Pos) []types.Object {
	var out []types.Object
	for _, s := range f.spans {
		if pos > s.from && pos < s.to {
			out = append(out, s.mutex)
		}
	}
	return out
}

// AnyHeldAt reports whether any mutex is held at pos.
func (f *Facts) AnyHeldAt(pos token.Pos) bool {
	for _, s := range f.spans {
		if pos > s.from && pos < s.to {
			return true
		}
	}
	return false
}
