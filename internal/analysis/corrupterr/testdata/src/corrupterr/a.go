// Fixture for the corrupterr analyzer: exported decode entry points
// mint errors through internal/corrupt, never bare fmt.Errorf or
// errors.New.
package fixture

import (
	"errors"
	"fmt"

	"classpack/internal/corrupt"
)

// DecodeThing is an entry point by name and returns bare errors.
func DecodeThing(data []byte) error {
	if len(data) == 0 {
		return errors.New("empty input") // want `decode entry point returns a bare errors\.New`
	}
	if data[0] == 0xFF {
		return fmt.Errorf("bad tag %d", data[0]) // want `decode entry point returns a bare fmt\.Errorf`
	}
	return nil
}

// ParseHeader mints structured errors and wraps deeper ones; no finding.
func ParseHeader(data []byte) error {
	if len(data) < 4 {
		return corrupt.Errorf("header", 0, "need 4 bytes, have %d", len(data))
	}
	if err := DecodeThing(data[4:]); err != nil {
		return fmt.Errorf("parsing header: %w", err)
	}
	return nil
}

// UnpackAll passes errors through untouched; no finding.
func UnpackAll(data []byte) error {
	return DecodeThing(data)
}

// decodeInner is unexported: helpers may return plain errors, the entry
// point above them is responsible for structure.
func decodeInner() error {
	return errors.New("helper error")
}

// Render is exported but not an entry point by name.
func Render() error {
	return errors.New("not a decode failure")
}

// ReadAllowed documents an intentional bare error; no finding.
func ReadAllowed(data []byte) error {
	if len(data) == 0 {
		//classpack:vet-allow corrupterr fixture: usage error, not archive damage
		return errors.New("no input given")
	}
	return nil
}
