// Package corrupterr implements the corrupterr analyzer: exported
// decode entry points report malformed input through the structured
// corrupt-error taxonomy, never as bare fmt.Errorf / errors.New text.
//
// The contract (classpack.AsCorrupt): every decode failure caused by
// archive bytes carries a *corrupt.Error locating the damaged stream.
// The analyzer inspects exported functions and methods whose name
// marks them as decode entry points (Decode…, Read…, Unpack…, Parse…,
// Expand…) and which return an error, and flags return statements that
// mint the error with a bare errors.New or a fmt.Errorf that does not
// wrap an underlying error with %w (a wrapping Errorf is allowed — it
// propagates a structured error minted deeper in the stack).
package corrupterr

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"classpack/internal/analysis/framework"
)

// Analyzer flags bare error minting at decode entry points.
var Analyzer = &framework.Analyzer{
	Name: "corrupterr",
	Doc: "report exported decode entry points returning bare fmt.Errorf/" +
		"errors.New instead of *corrupt.Error values",
	Run: run,
}

// entryName matches exported decode entry points by name.
var entryName = regexp.MustCompile(`^(Decode|Read|Unpack|Parse|Expand)`)

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() || !entryName.MatchString(fn.Name.Name) {
				continue
			}
			errIdx, nResults := errorResult(pass.Info, fn)
			if errIdx < 0 {
				continue
			}
			checkReturns(pass, fn.Body, errIdx, nResults)
		}
	}
	return nil
}

// errorResult locates the error in fn's results (-1 if none).
func errorResult(info *types.Info, fn *ast.FuncDecl) (idx, n int) {
	obj, ok := info.Defs[fn.Name].(*types.Func)
	if !ok {
		return -1, 0
	}
	results := obj.Type().(*types.Signature).Results()
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			return i, results.Len()
		}
	}
	return -1, results.Len()
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// checkReturns flags bare error minting in the function's own return
// statements (nested function literals are separate functions with
// their own contracts, so they are skipped).
func checkReturns(pass *framework.Pass, body *ast.BlockStmt, errIdx, nResults int) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if len(st.Results) != nResults || errIdx >= len(st.Results) {
				return true // naked return or multi-value call passthrough
			}
			if kind := bareMint(pass.Info, st.Results[errIdx]); kind != "" {
				pass.Reportf(st.Results[errIdx].Pos(),
					"decode entry point returns a bare %s; mint the error with internal/corrupt so classpack.AsCorrupt matches it",
					kind)
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// bareMint reports the offending constructor name when e mints an
// unstructured error, or "" when e is acceptable.
func bareMint(info *types.Info, e ast.Expr) string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	switch {
	case fn.Pkg().Path() == "errors" && fn.Name() == "New":
		return "errors.New"
	case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
		if wrapsError(call) {
			return ""
		}
		return "fmt.Errorf"
	}
	return ""
}

// wrapsError reports whether a fmt.Errorf call wraps an underlying
// error with %w; such calls propagate structure minted deeper down.
func wrapsError(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return false
	}
	return strings.Contains(lit.Value, "%w")
}
