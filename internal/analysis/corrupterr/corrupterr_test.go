package corrupterr_test

import (
	"testing"

	"classpack/internal/analysis/analysistest"
	"classpack/internal/analysis/corrupterr"
)

func TestCorrupterr(t *testing.T) {
	analysistest.Run(t, "testdata", corrupterr.Analyzer, "corrupterr")
}
