// Package callgraph builds the lightweight intra-package call graph the
// second-generation analyzers (ctxflow in particular) reason over: which
// package-level functions and methods each function calls
// *synchronously*. Calls made from a `go` statement — and the bodies of
// function literals launched by one — are excluded, because work handed
// to another goroutine no longer blocks the caller; that distinction is
// exactly what a request-path analysis needs. Deferred calls run on the
// calling goroutine and are included.
//
// The graph is deliberately intra-package and name-resolved (no
// interface devirtualization, no function-value tracking): the analyzers
// built on it enforce invariants within one layer (serve, castore), and
// a missed dynamic edge means a missed finding, never a false one.
package callgraph

import (
	"go/ast"
	"go/types"
)

// Graph is the synchronous intra-package call graph of one package.
type Graph struct {
	// Decls maps each package-level function or method object to its
	// declaration.
	Decls map[types.Object]*ast.FuncDecl
	// callees maps a function object to the package-local functions its
	// body calls synchronously (deduplicated, order arbitrary).
	callees map[types.Object][]types.Object
}

// Build constructs the graph over the package's files.
func Build(files []*ast.File, info *types.Info) *Graph {
	g := &Graph{
		Decls:   make(map[types.Object]*ast.FuncDecl),
		callees: make(map[types.Object][]types.Object),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj := info.Defs[fn.Name]; obj != nil {
				g.Decls[obj] = fn
			}
		}
	}
	for obj, fn := range g.Decls {
		seen := make(map[types.Object]bool)
		walkSync(fn.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := CalleeOf(info, call)
			if callee == nil || seen[callee] {
				return
			}
			if _, local := g.Decls[callee]; local {
				seen[callee] = true
				g.callees[obj] = append(g.callees[obj], callee)
			}
		})
	}
	return g
}

// CalleeOf resolves a call expression to the object of its callee, or
// nil for calls through function values, builtins, and conversions.
func CalleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// walkSync visits every node of body reachable on the calling
// goroutine: it descends into function literals (they may be invoked or
// deferred here) but not into `go` statements, whose call and literal
// body run elsewhere.
func walkSync(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		visit(n)
		return true
	})
}

// WalkSync exposes the synchronous walk for analyzers that need the
// same "skip goroutine bodies" traversal over arbitrary nodes.
func WalkSync(body ast.Node, visit func(ast.Node)) { walkSync(body, visit) }

// ReachableFrom returns the set of functions reachable from any root by
// following synchronous intra-package calls, roots included.
func (g *Graph) ReachableFrom(roots []types.Object) map[types.Object]bool {
	reach := make(map[types.Object]bool)
	var stack []types.Object
	for _, r := range roots {
		if r != nil && !reach[r] {
			reach[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, callee := range g.callees[cur] {
			if !reach[callee] {
				reach[callee] = true
				stack = append(stack, callee)
			}
		}
	}
	return reach
}
