// Package ctxflow implements the ctxflow analyzer: code reachable from
// a request path must observe context cancellation when it blocks. A
// request path is anything an HTTP handler, a context-taking entry
// point, or the daemon's Serve loop runs synchronously — computed over
// the intra-package call graph, goroutine bodies excluded (work handed
// to another goroutine no longer blocks the request).
//
// On those paths the analyzer flags the blocking shapes that cannot be
// cancelled:
//
//   - time.Sleep: sleeps through shutdown; use a ctx-aware wait
//     (select on ctx.Done and a timer).
//   - bare channel sends/receives outside a select: block forever if
//     the peer is gone. Receiving from a Done() channel is exempt — it
//     *is* the cancellation signal. Operations inside a select's comm
//     clauses are exempt; pairing them with a ctx.Done or default arm
//     is the select's business, and the daemon's selects do.
//   - calls to methods named Acquire, Wait, or Probe without a
//     context.Context argument: the admission and degrade layers'
//     blocking entry points, invoked in a form that cannot be
//     interrupted.
//
// Blocking that is provably bounded (a receive the same function just
// fed, a Serve shutdown handshake) is suppressed case by case with a
// reasoned //classpack:vet-allow ctxflow directive.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"classpack/internal/analysis/callgraph"
	"classpack/internal/analysis/framework"
)

// Analyzer flags uncancellable blocking on request paths.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc:  "report blocking calls on request paths that do not observe context cancellation",
	Run:  run,
}

func run(pass *framework.Pass) error {
	graph := callgraph.Build(pass.Files, pass.Info)
	var roots []types.Object
	for obj, fn := range graph.Decls {
		if isRequestRoot(pass.Info, fn) {
			roots = append(roots, obj)
		}
	}
	reach := graph.ReachableFrom(roots)
	for obj := range reach {
		checkFunc(pass, graph.Decls[obj])
	}
	return nil
}

// isRequestRoot reports whether fn starts a request path: an HTTP
// handler shape, a context-taking function, or the Serve loop itself.
func isRequestRoot(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Name.Name == "Serve" {
		return true
	}
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if isNamed(tv.Type, "net/http", "Request") || // *http.Request
			isNamed(tv.Type, "net/http", "ResponseWriter") ||
			isNamed(tv.Type, "context", "Context") {
			return true
		}
	}
	return false
}

// checkFunc flags the uncancellable blocking shapes in one reachable
// function body, goroutine bodies excluded.
func checkFunc(pass *framework.Pass, fn *ast.FuncDecl) {
	if fn == nil || fn.Body == nil {
		return
	}
	// Channel operations that are a select's comm clauses are the
	// select's business, not bare blocking.
	inComm := make(map[ast.Node]bool)
	callgraph.WalkSync(fn.Body, func(n ast.Node) {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return
		}
		for _, clause := range sel.Body.List {
			comm, ok := clause.(*ast.CommClause)
			if !ok || comm.Comm == nil {
				continue
			}
			ast.Inspect(comm.Comm, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.UnaryExpr:
					inComm[x] = true
				case *ast.SendStmt:
					inComm[x] = true
				}
				return true
			})
		}
	})
	callgraph.WalkSync(fn.Body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, x)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !inComm[x] && !isDoneChannel(x.X) {
				pass.Reportf(x.Pos(),
					"bare channel receive on a request path blocks without observing cancellation: select on it with ctx.Done")
			}
		case *ast.SendStmt:
			if !inComm[x] {
				pass.Reportf(x.Pos(),
					"bare channel send on a request path blocks without observing cancellation: select on it with ctx.Done")
			}
		}
	})
}

// checkCall flags time.Sleep and context-free blocking entry points.
func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if pkg, isPkg := pass.Info.Uses[id].(*types.PkgName); isPkg {
			if pkg.Imported().Path() == "time" && sel.Sel.Name == "Sleep" {
				pass.Reportf(call.Pos(),
					"time.Sleep on a request path cannot be cancelled: select on ctx.Done and a timer instead")
			}
			return
		}
	}
	switch sel.Sel.Name {
	case "Acquire", "Wait", "Probe":
	default:
		return
	}
	for _, arg := range call.Args {
		if tv, ok := pass.Info.Types[arg]; ok && tv.Type != nil && isNamed(tv.Type, "context", "Context") {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"%s call without a context argument on a request path cannot be interrupted once it blocks", sel.Sel.Name)
}

// isDoneChannel reports whether expr is a call to a method named Done —
// receiving from ctx.Done() is the cancellation signal itself.
func isDoneChannel(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done"
}

// isNamed reports whether t (or its pointee) is the named type
// pkgPath.name — interfaces included.
func isNamed(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
