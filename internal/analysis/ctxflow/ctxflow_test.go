package ctxflow_test

import (
	"testing"

	"classpack/internal/analysis/analysistest"
	"classpack/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "ctxflow")
}
