// Fixture for the ctxflow analyzer: blocking on a request path must
// observe context cancellation.
package fixture

import (
	"context"
	"net/http"
	"time"
)

type limiter struct {
	slots chan struct{}
}

// Acquire blocks until a slot frees; the ctx-taking form is the
// cancellable one.
func (l *limiter) Acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Wait is the uncancellable form the analyzer exists to keep
// off request paths. The handler below pulls it onto one, so both the
// context-free call site and the bare send in its body are findings.
func (l *limiter) Wait() {
	l.slots <- struct{}{} // want `bare channel send on a request path blocks without observing cancellation`
}

// HandleGet is an HTTP-handler root: everything it calls synchronously
// is a request path.
func HandleGet(w http.ResponseWriter, r *http.Request, l *limiter) {
	retryBackoff()
	l.Wait() // want `Wait call without a context argument on a request path cannot be interrupted once it blocks`
	waitForResult(r.Context(), l)
}

// retryBackoff is reachable from the handler; its sleep stalls the
// request through shutdown.
func retryBackoff() {
	time.Sleep(50 * time.Millisecond) // want `time\.Sleep on a request path cannot be cancelled`
}

// waitForResult blocks on a bare receive instead of selecting with
// ctx.Done.
func waitForResult(ctx context.Context, l *limiter) {
	<-l.slots // want `bare channel receive on a request path blocks without observing cancellation`
	_ = ctx
}

// CtxAwareWait is the blessed shape: every blocking op is a select arm
// next to ctx.Done; no finding.
func CtxAwareWait(ctx context.Context, l *limiter) error {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	case v := <-l.slots:
		_ = v
		return nil
	}
}

// DoneReceiveIsFine: receiving from Done *is* observing cancellation;
// no finding.
func DoneReceiveIsFine(ctx context.Context) {
	<-ctx.Done()
}

// BackgroundLoop hands the blocking to another goroutine; goroutine
// bodies are not request paths, so no finding.
func BackgroundLoop(ctx context.Context, l *limiter) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case l.slots <- struct{}{}:
				time.Sleep(time.Millisecond)
			}
		}
	}()
}

// unreachableHelper is never called from a root; its sleep is not a
// request-path finding.
func unreachableHelper() {
	time.Sleep(time.Second)
}

// AllowedHandshake documents a provably bounded receive; no finding.
func AllowedHandshake(ctx context.Context, done chan error) error {
	//classpack:vet-allow ctxflow fixture: the peer always sends exactly once before this point
	return <-done
}
