// Fixture for the decodebound analyzer: allocations sized by decoded
// input must be bounded first.
package fixture

import (
	"bytes"

	"classpack/internal/encoding/varint"
)

const maxEntries = 1 << 16

// Unbounded allocates straight from a decoded count.
func Unbounded(data []byte) ([]uint64, error) {
	n, _, err := varint.Uint(data)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, n) // want `make sized by n, which is decoded input with no bound check before allocation`
	return out, nil
}

// LoopIsNotABound iterates over the decoded count before allocating;
// the loop comparison must not count as a bound check.
func LoopIsNotABound(data []byte) []int {
	n, _, _ := varint.Uint(data)
	sum := 0
	for i := uint64(0); i < n; i++ {
		sum++
	}
	return make([]int, n) // want `make sized by n, which is decoded input with no bound check before allocation`
}

// GrowUnbounded feeds a decoded length to a buffer Grow.
func GrowUnbounded(data []byte) *bytes.Buffer {
	n, _, _ := varint.Uint(data)
	var buf bytes.Buffer
	buf.Grow(int(n)) // want `Grow sized by int\(n\), which is decoded input with no bound check before allocation`
	return &buf
}

// Guarded checks the count against a structural cap before allocating.
func Guarded(data []byte) ([]uint64, error) {
	n, _, err := varint.Uint(data)
	if err != nil {
		return nil, err
	}
	if n > maxEntries {
		return nil, err
	}
	return make([]uint64, n), nil
}

// GuardedAgainstInput bounds the count by the bytes that must back it.
func GuardedAgainstInput(data []byte) []uint16 {
	n, _, _ := varint.Uint(data)
	if int(n)*2 > len(data) {
		return nil
	}
	return make([]uint16, n)
}

// Allowed drops the finding with a documented directive.
func Allowed(data []byte) []byte {
	n, _, _ := varint.Uint(data)
	//classpack:vet-allow decodebound fixture: growth is capped by the append below
	return make([]byte, n)
}

// Untainted sizes come from the input itself, not decoded integers.
func Untainted(data []byte) []byte {
	return make([]byte, len(data))
}
