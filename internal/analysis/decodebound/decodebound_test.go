package decodebound_test

import (
	"testing"

	"classpack/internal/analysis/analysistest"
	"classpack/internal/analysis/decodebound"
)

func TestDecodebound(t *testing.T) {
	analysistest.Run(t, "testdata", decodebound.Analyzer, "decodebound")
}
