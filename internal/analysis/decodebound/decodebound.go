// Package decodebound implements the decodebound analyzer: no
// allocation may be sized by a value read from decoded input unless
// that value was bounded first.
//
// The invariant (established by the decompression-bomb work): every
// length or count decoded from archive bytes is checked — against the
// remaining input, a configured cap such as Options.MaxDecodedBytes /
// MaxClassCount, or a structural limit — before it reaches make, a
// buffer Grow, or a slices.Grow. The analyzer taints integers produced
// by the varint/stream/classfile readers (see taint.DecodeSources),
// follows them through assignments, conversions and arithmetic within
// a function, and flags allocation sites whose size argument is still
// unbounded at the point of allocation. A comparison that only drives
// a loop over the value does not count as a bound.
package decodebound

import (
	"go/ast"
	"go/types"

	"classpack/internal/analysis/framework"
	"classpack/internal/analysis/taint"
)

// Analyzer flags allocations sized by unbounded decoded values.
var Analyzer = &framework.Analyzer{
	Name: "decodebound",
	Doc: "report make/Grow calls whose size argument derives from decoded " +
		"input with no intervening bound check",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fn *ast.FuncDecl) {
	tf := taint.Analyze(pass.Info, fn.Body, taint.DecodeSources)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if isBuiltin(pass.Info, fun, "make") {
				// make(T, len) and make(T, len, cap): every size
				// argument after the type must be bounded.
				for _, arg := range call.Args[1:] {
					if tf.TaintedAt(arg) {
						pass.Reportf(arg.Pos(),
							"make sized by %s, which is decoded input with no bound check before allocation",
							types.ExprString(arg))
					}
				}
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Grow" && len(call.Args) == 1 && tf.TaintedAt(call.Args[0]) {
				pass.Reportf(call.Args[0].Pos(),
					"Grow sized by %s, which is decoded input with no bound check before allocation",
					types.ExprString(call.Args[0]))
			}
		}
		return true
	})
}

func isBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	obj := info.Uses[id]
	_, ok := obj.(*types.Builtin)
	return ok
}
