package balancegen_test

import (
	"testing"

	"classpack/internal/analysis/analysistest"
	"classpack/internal/analysis/balancegen"
)

func TestBalancegen(t *testing.T) {
	analysistest.Run(t, "testdata", balancegen.Analyzer, "balancegen")
}
