// Package balancegen implements the balancegen analyzer: the
// generalized paired-call check for the daemon layer. Where poolbalance
// pairs sync.Pool.Get with Put, balancegen pairs
//
//   - sync.Mutex / sync.RWMutex Lock with Unlock (and RLock with
//     RUnlock, tracked as a separate discipline on the same mutex), and
//   - atomic gauge increments with their decrements: an .Add with a
//     negated argument on a sync/atomic Int32/Int64/Uint32/Uint64
//     balances an .Add with a positive one (the admission queue's
//     waiters depth, mem_inflight accounting).
//
// Both must balance on every path out of the function — a deferred
// release anywhere, or a plain release between the acquire and each
// later return — including early error returns, which is where the real
// bugs hide. The engine's accessor support means a release routed
// through a named cleanup closure (`unqueue := func() { ... }`) or a
// package-level helper still counts on the paths that call it.
//
// An atomic with increments but no decrement anywhere in the package is
// a monotonic counter (par's work-claim index, the metrics counters),
// not a gauge, and is deliberately not reported; mutexes get no such
// out — a Lock with no Unlock in sight is a bug wherever it lives.
package balancegen

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"classpack/internal/analysis/framework"
	"classpack/internal/analysis/guard"
	"classpack/internal/analysis/pairs"
)

// Analyzer flags lock/unlock and gauge inc/dec pairs that miss a
// release on some return path.
var Analyzer = &framework.Analyzer{
	Name: "balancegen",
	Doc:  "report Lock/Unlock, RLock/RUnlock, and atomic gauge inc/dec pairs unbalanced on some return path",
	Run:  run,
}

func run(pass *framework.Pass) error {
	pairs.Check(pairs.Config{
		Info:  pass.Info,
		Files: pass.Files,
		Classify: func(call *ast.CallExpr) (pairs.Res, pairs.Kind) {
			if mu, locking := guard.MutexOp(pass.Info, call); mu != nil {
				class := "lock"
				if name := call.Fun.(*ast.SelectorExpr).Sel.Name; name == "RLock" || name == "RUnlock" {
					class = "rlock"
				}
				if locking {
					return pairs.Res{Obj: mu, Class: class}, pairs.Acquire
				}
				return pairs.Res{Obj: mu, Class: class}, pairs.Release
			}
			if gauge, dec := gaugeOp(pass.Info, call); gauge != nil {
				if dec {
					return pairs.Res{Obj: gauge, Class: "gauge"}, pairs.Release
				}
				return pairs.Res{Obj: gauge, Class: "gauge"}, pairs.Acquire
			}
			return pairs.Res{}, pairs.None
		},
		// Locks and gauge tokens are effects, not values: returning the
		// new count does not hand the obligation to the caller.
		TrackEscapes: false,
		Enforce: func(res pairs.Res, releasedInPackage bool) bool {
			if res.Class == "gauge" {
				return releasedInPackage
			}
			return true
		},
		NeverMsg: func(res pairs.Res) string {
			switch res.Class {
			case "rlock":
				return fmt.Sprintf("%s.RLock is never released in this function (no RUnlock)", res.Obj.Name())
			case "gauge":
				return fmt.Sprintf("gauge %s is incremented but never decremented in this function", res.Obj.Name())
			}
			return fmt.Sprintf("%s.Lock is never released in this function (no Unlock)", res.Obj.Name())
		},
		DropMsg: func(res pairs.Res) string {
			switch res.Class {
			case "rlock":
				return fmt.Sprintf("return path exits with %s still read-locked (no RUnlock before return)", res.Obj.Name())
			case "gauge":
				return fmt.Sprintf("return path exits without decrementing gauge %s", res.Obj.Name())
			}
			return fmt.Sprintf("return path exits with %s still locked (no Unlock before return)", res.Obj.Name())
		},
		Reportf: pass.Reportf,
	})
	return nil
}

// gaugeOp resolves call to an Add on a typed sync/atomic integer,
// returning the gauge's variable/field object and whether the argument
// is negated (a decrement).
func gaugeOp(info *types.Info, call *ast.CallExpr) (gauge types.Object, dec bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" || len(call.Args) != 1 {
		return nil, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil, false
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" {
		return nil, false
	}
	switch named.Obj().Name() {
	case "Int32", "Int64", "Uint32", "Uint64":
	default:
		return nil, false
	}
	if u, isNeg := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); isNeg && u.Op == token.SUB {
		dec = true
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return info.Uses[x], dec
	case *ast.SelectorExpr:
		return info.Uses[x.Sel], dec
	}
	return nil, false
}
