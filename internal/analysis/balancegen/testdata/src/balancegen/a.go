// Fixture for the balancegen analyzer: Lock/Unlock, RLock/RUnlock, and
// atomic gauge inc/dec must balance on every path out of the function.
package fixture

import (
	"errors"
	"sync"
	"sync/atomic"
)

type server struct {
	mu       sync.Mutex
	rw       sync.RWMutex
	waiters  atomic.Int64
	claimIdx atomic.Int64
}

// LockDropOnError exits the error path with the mutex held.
func LockDropOnError(s *server, fail bool) error {
	s.mu.Lock()
	if fail {
		return errors.New("oops") // want `return path exits with mu still locked \(no Unlock before return\)`
	}
	s.mu.Unlock()
	return nil
}

// LockNeverReleased takes the lock and forgets it entirely.
func LockNeverReleased(s *server) {
	s.mu.Lock() // want `mu\.Lock is never released in this function \(no Unlock\)`
}

// DeferredUnlock is balanced on every path; no finding.
func DeferredUnlock(s *server, fail bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fail {
		return errors.New("oops")
	}
	return nil
}

// ReadLockDrop exits a path still read-locked; the RLock discipline is
// tracked separately from Lock on the same mutex.
func ReadLockDrop(s *server, fail bool) error {
	s.rw.RLock()
	if fail {
		return errors.New("oops") // want `return path exits with rw still read-locked \(no RUnlock before return\)`
	}
	s.rw.RUnlock()
	return nil
}

// SingleflightShape unlocks on both branches before returning; no
// finding.
func SingleflightShape(s *server, hit bool) int {
	s.mu.Lock()
	if hit {
		s.mu.Unlock()
		return 1
	}
	s.mu.Unlock()
	return 0
}

// GaugeDropOnError leaks a waiter on the error path.
func GaugeDropOnError(s *server, fail bool) error {
	s.waiters.Add(1)
	if fail {
		return errors.New("oops") // want `return path exits without decrementing gauge waiters`
	}
	s.waiters.Add(-1)
	return nil
}

// GaugeClosureAccessor routes the decrement through a named cleanup
// closure; the paths that call it balance. The early return that does
// not is the finding.
func GaugeClosureAccessor(s *server, fail bool) error {
	s.waiters.Add(1)
	unqueue := func() { s.waiters.Add(-1) }
	if fail {
		return errors.New("oops") // want `return path exits without decrementing gauge waiters`
	}
	unqueue()
	return nil
}

// ClaimCounter increments an atomic that nothing ever decrements: a
// monotonic counter, not a gauge; no finding.
func ClaimCounter(s *server) int64 {
	return s.claimIdx.Add(1)
}

// AllowedHandoff documents an intentional imbalance: the lock is
// released by the goroutine the work is handed to.
func AllowedHandoff(s *server) {
	//classpack:vet-allow balancegen fixture: unlock happens on the worker goroutine
	s.mu.Lock()
	go func() {
		s.mu.Unlock()
	}()
}
