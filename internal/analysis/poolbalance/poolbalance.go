// Package poolbalance implements the poolbalance analyzer: every
// sync.Pool.Get must be matched by a Put on every path out of the
// function, or the pooled object (a flate writer's match-finder state,
// a scratch buffer) silently stops being recycled.
//
// The analyzer understands the accessor idiom the archive package
// uses: a package function whose body Gets from a pool and returns the
// object (getFlateWriter) transfers ownership to its caller, so calls
// to it count as Gets there; the matching put helper (putFlateWriter)
// counts as a Put. Within a function, a Get is balanced by a deferred
// Put anywhere in the function, or by a plain Put positioned between
// the Get and each later return. Intentional drops — a reader that saw
// corrupt input must not be recycled — are suppressed with a
// //classpack:vet-allow poolbalance <reason> directive.
package poolbalance

import (
	"go/ast"
	"go/token"
	"go/types"

	"classpack/internal/analysis/framework"
)

// Analyzer flags sync.Pool Gets that can escape without a Put.
var Analyzer = &framework.Analyzer{
	Name: "poolbalance",
	Doc:  "report sync.Pool.Get calls lacking a matching Put on some return path",
	Run:  run,
}

// event is one Get or Put of a pool within a function scope.
type event struct {
	pool     types.Object
	pos      token.Pos
	call     *ast.CallExpr
	deferred bool
}

type analysis struct {
	pass *framework.Pass
	// Accessor functions: package-level helpers that Get from /
	// Put to a specific pool on their caller's behalf.
	getAccessor map[types.Object]types.Object // func -> pool
	putAccessor map[types.Object]types.Object
}

func run(pass *framework.Pass) error {
	a := &analysis{
		pass:        pass,
		getAccessor: make(map[types.Object]types.Object),
		putAccessor: make(map[types.Object]types.Object),
	}
	a.findAccessors()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			a.checkScopes(fn)
		}
	}
	return nil
}

// poolObj resolves call to a sync.Pool method of the given name and
// returns the pool variable's object.
func (a *analysis) poolObj(call *ast.CallExpr, method string) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	tv, ok := a.pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "Pool" {
		return nil
	}
	// Identify the pool by the object of the variable or field it is
	// stored in; unresolvable receivers are skipped.
	switch x := sel.X.(type) {
	case *ast.Ident:
		return a.pass.Info.Uses[x]
	case *ast.SelectorExpr:
		return a.pass.Info.Uses[x.Sel]
	}
	return nil
}

// findAccessors records package functions that Get from or Put to one
// pool directly, to treat their call sites as the pool operation.
func (a *analysis) findAccessors() {
	for _, file := range a.pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := a.pass.Info.Defs[fn.Name]
			if obj == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pool := a.poolObj(call, "Get"); pool != nil {
					a.getAccessor[obj] = pool
				}
				if pool := a.poolObj(call, "Put"); pool != nil {
					a.putAccessor[obj] = pool
				}
				return true
			})
		}
	}
}

// classify resolves call to a (pool, kind) event, following accessors.
func (a *analysis) classify(call *ast.CallExpr) (pool types.Object, isGet, isPut bool) {
	if p := a.poolObj(call, "Get"); p != nil {
		return p, true, false
	}
	if p := a.poolObj(call, "Put"); p != nil {
		return p, false, true
	}
	var callee types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee = a.pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		callee = a.pass.Info.Uses[fun.Sel]
	}
	if callee == nil {
		return nil, false, false
	}
	if p, ok := a.getAccessor[callee]; ok {
		return p, true, false
	}
	if p, ok := a.putAccessor[callee]; ok {
		return p, false, true
	}
	return nil, false, false
}

// scope is one function-like body's events.
type scope struct {
	gets    []event
	puts    []event
	returns []*ast.ReturnStmt
	// escaped maps Get calls whose result flows into a return
	// statement: ownership transfers to the caller.
	escaped map[*ast.CallExpr]bool
	nested  []*ast.FuncLit
}

// checkScopes analyzes fn's body and, recursively, every non-deferred
// function literal inside it as an independent scope.
func (a *analysis) checkScopes(fn *ast.FuncDecl) {
	bodies := []ast.Node{fn.Body}
	for len(bodies) > 0 {
		body := bodies[0]
		bodies = bodies[1:]
		sc := &scope{escaped: make(map[*ast.CallExpr]bool)}
		a.scan(body, sc, false)
		a.markEscapes(sc)
		a.report(sc)
		for _, lit := range sc.nested {
			bodies = append(bodies, lit.Body)
		}
	}
}

// scan walks one scope's statements. Deferred function literals belong
// to the enclosing scope (their Puts run at every return); other
// literals are queued as independent scopes.
func (a *analysis) scan(n ast.Node, sc *scope, inDefer bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				a.scan(lit.Body, sc, true)
			} else if pool, _, isPut := a.classify(x.Call); isPut {
				sc.puts = append(sc.puts, event{pool: pool, pos: x.Pos(), deferred: true})
			}
			for _, arg := range x.Call.Args {
				a.scan(arg, sc, inDefer)
			}
			return false
		case *ast.FuncLit:
			sc.nested = append(sc.nested, x)
			return false
		case *ast.ReturnStmt:
			if !inDefer {
				sc.returns = append(sc.returns, x)
			}
			return true
		case *ast.CallExpr:
			pool, isGet, isPut := a.classify(x)
			switch {
			case isGet:
				sc.gets = append(sc.gets, event{pool: pool, pos: x.Pos(), call: x})
			case isPut:
				sc.puts = append(sc.puts, event{pool: pool, pos: x.Pos(), deferred: inDefer})
			}
			return true
		}
		return true
	})
}

// markEscapes finds Gets whose object is handed to the caller: the Get
// appears inside a return statement, or its assigned variable is
// mentioned by one. Those transfers are the accessor idiom, balanced
// at the call site instead.
func (a *analysis) markEscapes(sc *scope) {
	returned := make(map[types.Object]bool)
	inReturn := make(map[*ast.CallExpr]bool)
	for _, ret := range sc.returns {
		ast.Inspect(ret, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if obj := a.pass.Info.Uses[x]; obj != nil {
					returned[obj] = true
				}
			case *ast.CallExpr:
				inReturn[x] = true
			}
			return true
		})
	}
	for _, g := range sc.gets {
		if inReturn[g.call] {
			sc.escaped[g.call] = true
		}
	}
	a.assignEscapes(sc, returned)
}

// assignEscapes marks Gets assigned to variables that some return
// statement mentions.
func (a *analysis) assignEscapes(sc *scope, returned map[types.Object]bool) {
	for _, g := range sc.gets {
		if sc.escaped[g.call] {
			continue
		}
		for _, obj := range a.destsOf(g.call) {
			if returned[obj] {
				sc.escaped[g.call] = true
				break
			}
		}
	}
}

// destsOf finds the variables an expression's value is assigned to by
// locating the assignment statement containing the call.
func (a *analysis) destsOf(call *ast.CallExpr) []types.Object {
	var dests []types.Object
	for _, file := range a.pass.Files {
		if call.Pos() < file.Pos() || call.Pos() > file.End() {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || call.Pos() < assign.Pos() || call.Pos() > assign.End() {
				return true
			}
			contained := false
			for _, rhs := range assign.Rhs {
				ast.Inspect(rhs, func(n ast.Node) bool {
					if n == ast.Node(call) {
						contained = true
					}
					return !contained
				})
			}
			if !contained {
				return true
			}
			for _, lhs := range assign.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := a.objOf(id); obj != nil {
						dests = append(dests, obj)
					}
				}
			}
			return true
		})
	}
	return dests
}

func (a *analysis) objOf(id *ast.Ident) types.Object {
	if obj := a.pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return a.pass.Info.Uses[id]
}

// report flags each Get that some return path exits without a Put.
func (a *analysis) report(sc *scope) {
	for _, g := range sc.gets {
		if sc.escaped[g.call] {
			continue
		}
		name := g.pool.Name()
		if a.hasDeferredPut(sc, g.pool) {
			continue
		}
		anyPut := false
		for _, p := range sc.puts {
			if p.pool == g.pool {
				anyPut = true
			}
		}
		if !anyPut {
			a.pass.Reportf(g.pos,
				"object from %s.Get is never returned to the pool in this function", name)
			continue
		}
		for _, ret := range sc.returns {
			if ret.Pos() < g.pos {
				continue
			}
			covered := false
			for _, p := range sc.puts {
				if p.pool == g.pool && p.pos > g.pos && p.pos < ret.Pos() {
					covered = true
					break
				}
			}
			if !covered {
				a.pass.Reportf(ret.Pos(),
					"return path drops the object from %s.Get without a Put", name)
			}
		}
	}
}

func (a *analysis) hasDeferredPut(sc *scope, pool types.Object) bool {
	for _, p := range sc.puts {
		if p.deferred && p.pool == pool {
			return true
		}
	}
	return false
}
