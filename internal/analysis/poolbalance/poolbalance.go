// Package poolbalance implements the poolbalance analyzer: every
// sync.Pool.Get must be matched by a Put on every path out of the
// function, or the pooled object (a flate writer's match-finder state,
// a scratch buffer) silently stops being recycled.
//
// The analyzer understands the accessor idiom the archive package
// uses: a package function whose body Gets from a pool and returns the
// object (getFlateWriter) transfers ownership to its caller, so calls
// to it count as Gets there; the matching put helper (putFlateWriter)
// counts as a Put. Within a function, a Get is balanced by a deferred
// Put anywhere in the function, or by a plain Put positioned between
// the Get and each later return. Intentional drops — a reader that saw
// corrupt input must not be recycled — are suppressed with a
// //classpack:vet-allow poolbalance <reason> directive.
//
// The path machinery lives in internal/analysis/pairs; this package
// contributes only the sync.Pool classifier and the messages.
package poolbalance

import (
	"fmt"
	"go/ast"
	"go/types"

	"classpack/internal/analysis/framework"
	"classpack/internal/analysis/pairs"
)

// Analyzer flags sync.Pool Gets that can escape without a Put.
var Analyzer = &framework.Analyzer{
	Name: "poolbalance",
	Doc:  "report sync.Pool.Get calls lacking a matching Put on some return path",
	Run:  run,
}

func run(pass *framework.Pass) error {
	pairs.Check(pairs.Config{
		Info:  pass.Info,
		Files: pass.Files,
		Classify: func(call *ast.CallExpr) (pairs.Res, pairs.Kind) {
			if pool := poolObj(pass.Info, call, "Get"); pool != nil {
				return pairs.Res{Obj: pool, Class: "pool"}, pairs.Acquire
			}
			if pool := poolObj(pass.Info, call, "Put"); pool != nil {
				return pairs.Res{Obj: pool, Class: "pool"}, pairs.Release
			}
			return pairs.Res{}, pairs.None
		},
		TrackEscapes: true,
		NeverMsg: func(res pairs.Res) string {
			return fmt.Sprintf("object from %s.Get is never returned to the pool in this function", res.Obj.Name())
		},
		DropMsg: func(res pairs.Res) string {
			return fmt.Sprintf("return path drops the object from %s.Get without a Put", res.Obj.Name())
		},
		Reportf: pass.Reportf,
	})
	return nil
}

// poolObj resolves call to a sync.Pool method of the given name and
// returns the pool variable's object.
func poolObj(info *types.Info, call *ast.CallExpr, method string) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "Pool" {
		return nil
	}
	// Identify the pool by the object of the variable or field it is
	// stored in; unresolvable receivers are skipped.
	switch x := sel.X.(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}
