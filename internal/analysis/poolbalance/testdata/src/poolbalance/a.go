// Fixture for the poolbalance analyzer: every sync.Pool.Get is matched
// by a Put on every path out of the function.
package fixture

import (
	"bytes"
	"errors"
	"sync"
)

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// DropsOnError loses the buffer on the failure path.
func DropsOnError(fail bool) error {
	b, _ := bufPool.Get().(*bytes.Buffer)
	if fail {
		return errors.New("oops") // want `return path drops the object from bufPool\.Get without a Put`
	}
	bufPool.Put(b)
	return nil
}

// NeverPuts takes from the pool and forgets it entirely.
func NeverPuts() {
	b, _ := bufPool.Get().(*bytes.Buffer) // want `object from bufPool\.Get is never returned to the pool in this function`
	b.Reset()
}

// DeferredPut is balanced on every path by the deferred Put; no finding.
func DeferredPut(fail bool) error {
	b, _ := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(b)
	if fail {
		return errors.New("oops")
	}
	b.Reset()
	return nil
}

// getBuf transfers ownership to its caller; no finding here, and calls
// to it count as Gets at the call site.
func getBuf() *bytes.Buffer {
	b, _ := bufPool.Get().(*bytes.Buffer)
	if b == nil {
		b = new(bytes.Buffer)
	}
	return b
}

func putBuf(b *bytes.Buffer) { bufPool.Put(b) }

// AccessorDrop loses an accessor-obtained buffer on the failure path.
func AccessorDrop(fail bool) error {
	b := getBuf()
	if fail {
		return errors.New("oops") // want `return path drops the object from bufPool\.Get without a Put`
	}
	putBuf(b)
	return nil
}

// AccessorBalanced pairs the accessors on every path; no finding.
func AccessorBalanced() {
	b := getBuf()
	defer putBuf(b)
	b.Reset()
}

// AllowedDrop documents an intentional drop; no finding.
func AllowedDrop(corrupted bool) error {
	b := getBuf()
	if corrupted {
		//classpack:vet-allow poolbalance fixture: corrupted state must not be recycled
		return errors.New("dropped on purpose")
	}
	putBuf(b)
	return nil
}
