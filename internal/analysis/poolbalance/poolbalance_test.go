package poolbalance_test

import (
	"testing"

	"classpack/internal/analysis/analysistest"
	"classpack/internal/analysis/poolbalance"
)

func TestPoolbalance(t *testing.T) {
	analysistest.Run(t, "testdata", poolbalance.Analyzer, "poolbalance")
}
