// Package analysistest runs an analyzer over a fixture package and
// checks its diagnostics against // want comments, following the
// golang.org/x/tools/go/analysis/analysistest convention: fixtures live
// under testdata/src/<pkg>, and a line expecting diagnostics carries
//
//	// want `regexp` `regexp`...
//
// with one regexp per expected diagnostic on that line (double-quoted
// Go strings are accepted too). Every expectation must be matched by
// exactly one diagnostic and vice versa. Fixtures may import real
// classpack packages; those resolve against the enclosing module.
package analysistest

import (
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"classpack/internal/analysis/framework"
)

var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads testdata/src/<pkg> for each pkg, applies the analyzer, and
// reports mismatches between diagnostics and // want expectations.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	loader, err := framework.NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		p, err := loader.LoadDir(dir, "classpack-vet/fixture/"+pkg)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", dir, err)
		}
		diags, err := framework.Run(p, []*framework.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
		}
		check(t, p, diags)
	}
}

// expectation is one // want regexp, keyed to a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

func check(t *testing.T, p *framework.Package, diags []framework.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range p.Files {
		wants = append(wants, parseWants(t, p, f)...)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.used || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func parseWants(t *testing.T, p *framework.Package, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "want ")
			if !ok {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			for _, tok := range wantRE.FindAllString(rest, -1) {
				pat := tok
				if strings.HasPrefix(tok, "\"") {
					var err error
					if pat, err = strconv.Unquote(tok); err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, tok, err)
					}
				} else {
					pat = strings.Trim(tok, "`")
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				out = append(out, &expectation{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
			}
		}
	}
	return out
}

// moduleRoot climbs from the working directory to the go.mod holder.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
