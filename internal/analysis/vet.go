// Package analysis assembles classpack's custom static-analysis suite:
// the four analyzers that mechanically prove the decoder-safety
// invariants the fuzz harnesses can only sample, plus the package
// gating that scopes each analyzer to the code its invariant governs.
// cmd/classpack-vet and the clean-tree regression test both drive the
// suite through Vet.
package analysis

import (
	"strings"

	"classpack/internal/analysis/corrupterr"
	"classpack/internal/analysis/decodebound"
	"classpack/internal/analysis/framework"
	"classpack/internal/analysis/nopanic"
	"classpack/internal/analysis/poolbalance"
)

// decodePathPackages are the packages on the unpack path: everything
// that executes while turning attacker-controlled archive bytes back
// into class files. nopanic and corrupterr apply here.
var decodePathPackages = map[string]bool{
	"classpack/internal/core":       true,
	"classpack/internal/delta":      true,
	"classpack/internal/streams":    true,
	"classpack/internal/refs":       true,
	"classpack/internal/mtf":        true,
	"classpack/internal/jazz":       true,
	"classpack/internal/custom":     true,
	"classpack/internal/classfile":  true,
	"classpack/internal/bytecode":   true,
	"classpack/internal/stackstate": true,
}

// Check pairs an analyzer with the packages it governs.
type Check struct {
	Analyzer *framework.Analyzer
	// Applies reports whether the analyzer runs on the package with
	// the given import path.
	Applies func(pkgPath string) bool
}

// Suite returns the full classpack-vet analyzer suite.
func Suite() []Check {
	all := func(string) bool { return true }
	decodePath := func(path string) bool { return decodePathPackages[path] }
	return []Check{
		// decodebound and poolbalance self-limit (to decode-reader
		// calls and sync.Pool usage respectively), so they sweep the
		// whole tree; nopanic and corrupterr enforce contracts that
		// only the decode stack promises.
		{Analyzer: decodebound.Analyzer, Applies: all},
		{Analyzer: nopanic.Analyzer, Applies: decodePath},
		{Analyzer: corrupterr.Analyzer, Applies: decodePath},
		{Analyzer: poolbalance.Analyzer, Applies: all},
	}
}

// Vet loads every package of the module rooted at moduleDir and runs
// the suite, returning all surviving diagnostics sorted by position.
func Vet(moduleDir string) ([]framework.Diagnostic, error) {
	loader, err := framework.NewLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}
	suite := Suite()
	var out []framework.Diagnostic
	for _, pkg := range pkgs {
		var active []*framework.Analyzer
		for _, c := range suite {
			if c.Applies(pkg.Path) {
				active = append(active, c.Analyzer)
			}
		}
		if len(active) == 0 {
			continue
		}
		diags, err := framework.Run(pkg, active)
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	return out, nil
}

// TrimDiagnosticPaths rewrites absolute file names in diagnostics to
// be relative to moduleDir, for stable output.
func TrimDiagnosticPaths(diags []framework.Diagnostic, moduleDir string) {
	prefix := strings.TrimSuffix(moduleDir, "/") + "/"
	for i := range diags {
		diags[i].Pos.Filename = strings.TrimPrefix(diags[i].Pos.Filename, prefix)
	}
}
