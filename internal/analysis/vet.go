// Package analysis assembles classpack's custom static-analysis suite:
// nine analyzers in two generations, plus the package gating that
// scopes each to the code its invariant governs. The first generation
// (decodebound, nopanic, corrupterr, poolbalance) mechanically proves
// the decoder-safety invariants the fuzz harnesses can only sample; the
// second (ctxflow, guardedfield, goroutineleak, vfsdirect, balancegen)
// guards the daemon layer's concurrency and resource-safety contracts —
// the bug classes that surface after a week of uptime, not in a unit
// test. cmd/classpack-vet and the clean-tree regression test both drive
// the suite through Vet.
package analysis

import (
	"strings"
	"time"

	"classpack/internal/analysis/balancegen"
	"classpack/internal/analysis/corrupterr"
	"classpack/internal/analysis/ctxflow"
	"classpack/internal/analysis/decodebound"
	"classpack/internal/analysis/framework"
	"classpack/internal/analysis/goroutineleak"
	"classpack/internal/analysis/guardedfield"
	"classpack/internal/analysis/nopanic"
	"classpack/internal/analysis/poolbalance"
	"classpack/internal/analysis/vfsdirect"
)

// decodePathPackages are the packages on the unpack path: everything
// that executes while turning attacker-controlled archive bytes back
// into class files. nopanic and corrupterr apply here.
var decodePathPackages = map[string]bool{
	"classpack/internal/core":       true,
	"classpack/internal/delta":      true,
	"classpack/internal/streams":    true,
	"classpack/internal/refs":       true,
	"classpack/internal/mtf":        true,
	"classpack/internal/jazz":       true,
	"classpack/internal/custom":     true,
	"classpack/internal/classfile":  true,
	"classpack/internal/bytecode":   true,
	"classpack/internal/stackstate": true,
}

// daemonPackages are the long-running-process layers: the serve stack,
// the content-addressed store, the worker pool, and the filesystem
// seam. The second-generation analyzers apply here — their invariants
// (cancellation, goroutine lifetime, lock/gauge balance, crash-drill
// coverage) are properties of daemon code, and daemon code only.
var daemonPackages = map[string]bool{
	"classpack/internal/serve":        true,
	"classpack/internal/serve/client": true,
	"classpack/internal/castore":      true,
	"classpack/internal/par":          true,
	"classpack/internal/vfs":          true,
	"classpack/internal/faultinject":  true,
}

// Check pairs an analyzer with the packages it governs.
type Check struct {
	Analyzer *framework.Analyzer
	// Applies reports whether the analyzer runs on the package with
	// the given import path.
	Applies func(pkgPath string) bool
}

// Suite returns the full classpack-vet analyzer suite.
func Suite() []Check {
	all := func(string) bool { return true }
	decodePath := func(path string) bool { return decodePathPackages[path] }
	daemon := func(path string) bool { return daemonPackages[path] }
	return []Check{
		// decodebound and poolbalance self-limit (to decode-reader
		// calls and sync.Pool usage respectively), so they sweep the
		// whole tree; nopanic and corrupterr enforce contracts that
		// only the decode stack promises.
		{Analyzer: decodebound.Analyzer, Applies: all},
		{Analyzer: nopanic.Analyzer, Applies: decodePath},
		{Analyzer: corrupterr.Analyzer, Applies: decodePath},
		{Analyzer: poolbalance.Analyzer, Applies: all},
		// The concurrency generation runs on the daemon layer. ctxflow
		// roots at HTTP handlers and ctx-taking entry points, so it only
		// sees the serve stack; vfsdirect polices the store's write path
		// and must not run on vfs itself (the seam's os calls are the
		// point) or faultinject (the drill is the other side of the
		// seam).
		{Analyzer: ctxflow.Analyzer, Applies: func(path string) bool {
			return path == "classpack/internal/serve" || path == "classpack/internal/serve/client"
		}},
		{Analyzer: guardedfield.Analyzer, Applies: daemon},
		{Analyzer: goroutineleak.Analyzer, Applies: daemon},
		{Analyzer: vfsdirect.Analyzer, Applies: func(path string) bool {
			return path == "classpack/internal/castore"
		}},
		{Analyzer: balancegen.Analyzer, Applies: daemon},
	}
}

// Timing is one suite stage's wall time summed across packages. The
// pseudo-stage "load+typecheck" accounts for parsing and type-checking
// the module, which dominates the budget.
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// Vet loads every package of the module rooted at moduleDir and runs
// the suite, returning all surviving diagnostics sorted by position.
func Vet(moduleDir string) ([]framework.Diagnostic, error) {
	diags, _, err := VetTimed(moduleDir)
	return diags, err
}

// VetTimed is Vet with per-stage wall-time accounting, in suite order
// with load+typecheck first. cmd/classpack-vet prints the table under
// -timing and enforces the lint budget against the total.
func VetTimed(moduleDir string) ([]framework.Diagnostic, []Timing, error) {
	loadStart := time.Now()
	loader, err := framework.NewLoader(moduleDir)
	if err != nil {
		return nil, nil, err
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, nil, err
	}
	loadElapsed := time.Since(loadStart)
	suite := Suite()
	perAnalyzer := make(map[string]time.Duration)
	var out []framework.Diagnostic
	for _, pkg := range pkgs {
		var active []*framework.Analyzer
		for _, c := range suite {
			if c.Applies(pkg.Path) {
				active = append(active, c.Analyzer)
			}
		}
		if len(active) == 0 {
			continue
		}
		diags, err := framework.RunTimed(pkg, active, perAnalyzer)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, diags...)
	}
	timings := []Timing{{Name: "load+typecheck", Elapsed: loadElapsed}}
	for _, c := range suite {
		timings = append(timings, Timing{Name: c.Analyzer.Name, Elapsed: perAnalyzer[c.Analyzer.Name]})
	}
	return out, timings, nil
}

// TrimDiagnosticPaths rewrites absolute file names in diagnostics to
// be relative to moduleDir, for stable output.
func TrimDiagnosticPaths(diags []framework.Diagnostic, moduleDir string) {
	prefix := strings.TrimSuffix(moduleDir, "/") + "/"
	for i := range diags {
		diags[i].Pos.Filename = strings.TrimPrefix(diags[i].Pos.Filename, prefix)
	}
}
