// Package taint is the shared intraprocedural data-flow engine behind
// the decodebound and nopanic analyzers: it tracks which integer
// variables of a function are derived from decoded (attacker-
// controlled) input, and which of those have since been bounded by a
// comparison or a cap-shaped call.
//
// The analysis is deliberately flow-insensitive on taint (a variable
// assigned from a decode reader anywhere in the function is tainted
// everywhere) and position-sensitive on sanitization (a bound check
// only clears uses after it), which matches the decode stack's idiom —
// read a declared count, validate it against the input size or a
// configured cap, then allocate. Comparisons that merely drive a loop
// over the value (for i := 0; i < n; ...) do not count as bounds
// checks: iterating to a hostile count is exactly the bug class the
// analyzers exist to catch.
package taint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// Source names one callee whose integer results are decoded input: a
// package-level function (Recv == "") or a method (Recv is the bare
// receiver type name) of the given package path.
type Source struct {
	Pkg  string
	Recv string
	Name string
}

// DecodeSources is the default source set: every varint/u16/u32-shaped
// reader that turns archive bytes into integers on the decode path.
var DecodeSources = []Source{
	{Pkg: "classpack/internal/encoding/varint", Name: "Uint"},
	{Pkg: "classpack/internal/encoding/varint", Name: "Int"},
	{Pkg: "classpack/internal/encoding/varint", Name: "ReadUint"},
	{Pkg: "classpack/internal/encoding/varint", Name: "ReadInt"},
	{Pkg: "classpack/internal/encoding/varint", Recv: "Bounded", Name: "Decode"},
	{Pkg: "classpack/internal/streams", Recv: "RStream", Name: "Uint"},
	{Pkg: "classpack/internal/streams", Recv: "RStream", Name: "Int"},
	{Pkg: "classpack/internal/streams", Recv: "RStream", Name: "ReadByte"},
	{Pkg: "classpack/internal/classfile", Recv: "reader", Name: "u1"},
	{Pkg: "classpack/internal/classfile", Recv: "reader", Name: "u2"},
	{Pkg: "classpack/internal/classfile", Recv: "reader", Name: "u4"},
	{Pkg: "classpack/internal/bytecode", Name: "s4at"},
	{Pkg: "classpack/internal/encoding/huffman", Recv: "BitReader", Name: "ReadBits"},
}

// sanitizerName matches callees that exist to bound or validate a
// value: passing a tainted variable to one counts as a cap check.
var sanitizerName = regexp.MustCompile(`(?i)(cap|limit|charge|check|budget|bound|clamp|valid)`)

// Func holds the taint facts of one analyzed function body.
type Func struct {
	info      *types.Info
	sources   []Source
	sourceFns map[types.Object]bool // local closures that read decoded input
	tainted   map[types.Object]bool
	sanitized map[types.Object]token.Pos // earliest bounding position
}

// Analyze computes taint facts for one function body.
func Analyze(info *types.Info, body *ast.BlockStmt, sources []Source) *Func {
	f := &Func{
		info:      info,
		sources:   sources,
		sourceFns: make(map[types.Object]bool),
		tainted:   make(map[types.Object]bool),
		sanitized: make(map[types.Object]token.Pos),
	}
	if body == nil {
		return f
	}
	f.findSourceClosures(body)
	// Flow-insensitive fixpoint: keep propagating through assignments
	// until no new variable becomes tainted.
	for {
		before := len(f.tainted)
		f.propagate(body)
		if len(f.tainted) == before {
			break
		}
	}
	f.findSanitizers(body)
	return f
}

// TaintedAt reports whether e evaluates a decoded value that has not
// been bounded before e's position.
func (f *Func) TaintedAt(e ast.Expr) bool {
	return f.taintedExpr(e, e.Pos())
}

// findSourceClosures marks local closures whose bodies read decoded
// input (the `next := func() ... varint.Uint ...` idiom), so calls to
// them taint like direct reader calls.
func (f *Func) findSourceClosures(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if f.containsSourceCall(lit.Body) {
				if obj := f.objOf(id); obj != nil {
					f.sourceFns[obj] = true
				}
			}
		}
		return true
	})
}

func (f *Func) containsSourceCall(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && f.isSourceCall(call) {
			found = true
		}
		return !found
	})
	return found
}

// objOf resolves an identifier to its object (definition or use).
func (f *Func) objOf(id *ast.Ident) types.Object {
	if obj := f.info.Defs[id]; obj != nil {
		return obj
	}
	return f.info.Uses[id]
}

// isSourceCall reports whether call invokes a configured decode reader
// or a local closure wrapping one.
func (f *Func) isSourceCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj := f.objOf(fun)
		if obj == nil {
			return false
		}
		if f.sourceFns[obj] {
			return true
		}
		return f.matchesSource(obj)
	case *ast.SelectorExpr:
		obj := f.objOf(fun.Sel)
		if obj == nil {
			return false
		}
		return f.matchesSource(obj)
	}
	return false
}

func (f *Func) matchesSource(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recv = named.Obj().Name()
		}
	}
	for _, s := range f.sources {
		if s.Pkg == fn.Pkg().Path() && s.Name == fn.Name() && s.Recv == recv {
			return true
		}
	}
	return false
}

// propagate walks every assignment form once, tainting integer
// destinations of tainted right-hand sides.
func (f *Func) propagate(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				// v, err := source() — multi-value call: taint every
				// integer destination.
				if len(st.Rhs) == 1 && f.rhsTaints(st.Rhs[0]) {
					for _, lhs := range st.Lhs {
						f.taintDest(lhs)
					}
				}
				return true
			}
			for i := range st.Lhs {
				if f.rhsTaints(st.Rhs[i]) {
					f.taintDest(st.Lhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) != len(st.Values) {
				if len(st.Values) == 1 && f.rhsTaints(st.Values[0]) {
					for _, name := range st.Names {
						f.taintIdent(name)
					}
				}
				return true
			}
			for i, name := range st.Names {
				if f.rhsTaints(st.Values[i]) {
					f.taintIdent(name)
				}
			}
		}
		return true
	})
}

// rhsTaints reports whether assigning from e spreads taint. Position is
// irrelevant during propagation, so NoPos disables the sanitization cut.
func (f *Func) rhsTaints(e ast.Expr) bool { return f.taintedExpr(e, token.NoPos) }

func (f *Func) taintDest(lhs ast.Expr) {
	if id, ok := lhs.(*ast.Ident); ok {
		f.taintIdent(id)
	}
}

func (f *Func) taintIdent(id *ast.Ident) {
	if id.Name == "_" {
		return
	}
	obj := f.objOf(id)
	if obj == nil || !isIntegerish(obj.Type()) {
		return
	}
	f.tainted[obj] = true
}

// isIntegerish accepts integer types; errors, slices, strings and the
// rest never carry size taint.
func isIntegerish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsUntyped) != 0
}

// taintedExpr reports whether e carries unsanitized taint when
// evaluated at pos (NoPos: ignore sanitization entirely).
func (f *Func) taintedExpr(e ast.Expr, pos token.Pos) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := f.objOf(x)
		if obj == nil || !f.tainted[obj] {
			return false
		}
		if pos == token.NoPos {
			return true
		}
		s, ok := f.sanitized[obj]
		return !ok || s >= pos
	case *ast.ParenExpr:
		return f.taintedExpr(x.X, pos)
	case *ast.UnaryExpr:
		return f.taintedExpr(x.X, pos)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return false // booleans carry no size
		}
		return f.taintedExpr(x.X, pos) || f.taintedExpr(x.Y, pos)
	case *ast.CallExpr:
		if f.isSourceCall(x) {
			return true
		}
		// A type conversion preserves taint; builtins like len, cap,
		// min and max produce values bounded by real data or by the
		// untainted operand.
		if tv, ok := f.info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return f.taintedExpr(x.Args[0], pos)
		}
		return false
	}
	return false
}

// findSanitizers records where each tainted variable is first bounded.
func (f *Func) findSanitizers(body *ast.BlockStmt) {
	skipCmp := loopConditionComparisons(body, f)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			switch x.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				if skipCmp[x] {
					return true
				}
				f.sanitizeIdents(x.X, x.Pos())
				f.sanitizeIdents(x.Y, x.Pos())
			}
		case *ast.CallExpr:
			if f.isSanitizerCall(x) {
				for _, arg := range x.Args {
					f.sanitizeIdents(arg, x.Pos())
				}
			}
		case *ast.SwitchStmt:
			if x.Tag != nil {
				f.sanitizeIdents(x.Tag, x.Pos())
			}
		}
		return true
	})
}

// sanitizeIdents marks every tainted identifier inside e as bounded
// from pos on.
func (f *Func) sanitizeIdents(e ast.Expr, pos token.Pos) {
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := f.objOf(id)
		if obj == nil || !f.tainted[obj] {
			return true
		}
		if old, ok := f.sanitized[obj]; !ok || pos < old {
			f.sanitized[obj] = pos
		}
		return true
	})
}

// isSanitizerCall recognizes bounding calls two ways: by callee name
// (…Cap…, …Limit…, Check…, min, max, …) — functions whose purpose is
// validating or clamping.
func (f *Func) isSanitizerCall(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
		if obj := f.objOf(fun); obj != nil {
			if b, ok := obj.(*types.Builtin); ok {
				n := b.Name()
				return n == "min" || n == "max"
			}
		}
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	return sanitizerName.MatchString(name)
}

// loopConditionComparisons finds comparisons in for-loop conditions
// whose one side is that loop's own induction variable: `i < n` bounds
// i, not n, so it must not sanitize n.
func loopConditionComparisons(body *ast.BlockStmt, f *Func) map[*ast.BinaryExpr]bool {
	skip := make(map[*ast.BinaryExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond == nil {
			return true
		}
		cmp, ok := loop.Cond.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		induction := make(map[types.Object]bool)
		if init, ok := loop.Init.(*ast.AssignStmt); ok {
			for _, lhs := range init.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := f.objOf(id); obj != nil {
						induction[obj] = true
					}
				}
			}
		}
		for _, side := range []ast.Expr{cmp.X, cmp.Y} {
			if id, ok := side.(*ast.Ident); ok {
				if obj := f.objOf(id); obj != nil && induction[obj] {
					skip[cmp] = true
				}
			}
		}
		return true
	})
	return skip
}
