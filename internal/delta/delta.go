// Package delta implements the CJPD patch container: a compact diff
// between two packed archives that identifies unchanged classes by
// content digest against the old archive and carries only added or
// changed classes as an embedded payload archive. Applying a patch
// reconstructs the new archive byte-for-byte (the packed format is
// deterministic), and the result is verified against the recorded
// digest of the new archive before it is returned.
//
// Layout (all multi-byte integers are unsigned varints unless noted):
//
//	magic      4 bytes  "CJPD"
//	pversion   1 byte   patch-format version (1)
//	newVer     1 byte   container version of the new archive (2 or 3)
//	newOpts    1 byte   the new archive's header options byte
//	uvarint    chunkClasses of the new archive (0 for version 2)
//	oldDigest  32 bytes sha256 of the old archive bytes
//	newDigest  32 bytes sha256 of the new archive bytes
//	uvarint    numOps (one op per class of the new archive)
//	ops        numOps uvarints: 0 = next payload class, k>=1 = copy
//	           the old archive's class at ordinal k-1
//	uvarint    payloadLen
//	payload    payloadLen bytes: a complete packed archive holding the
//	           added/changed classes in op order (absent when 0)
//	crc32c     4 bytes, big-endian Castagnoli CRC over all prior bytes
//
// The whole-patch CRC makes any single corruption detectable before the
// (far more expensive) payload decode and reconstruction begin; the
// payload archive then passes through the normal checked decode path
// with MaxDecodedBytes/MaxClassCount enforced by the caller.
package delta

import (
	"crypto/sha256"
	"hash/crc32"
	"math"

	"classpack/internal/corrupt"
	"classpack/internal/encoding/varint"
)

// sPatch names the patch container in corrupt errors.
const sPatch = "patch"

// Magic identifies a CJPD patch.
var Magic = [4]byte{'C', 'J', 'P', 'D'}

// PatchVersion is the current patch-format version byte.
const PatchVersion = 1

// crcTable is the CRC32C (Castagnoli) table, the same polynomial the
// archive containers use.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// PayloadOp marks an op slot whose class travels in the patch payload
// (the wire encodes it as 0; copies of old ordinal k are wire k+1).
const PayloadOp = -1

// Patch is a decoded CJPD container.
type Patch struct {
	// NewVersion and NewOptions reproduce the new archive's header: the
	// container version byte (2 or 3) and the raw options byte. Applying
	// re-packs with exactly these choices so the output is byte-identical.
	NewVersion byte
	NewOptions byte
	// ChunkClasses is the new archive's classes-per-chunk (0 for a
	// version-2 new archive, positive for version 3).
	ChunkClasses int
	// OldDigest/NewDigest are sha256 over the full archive bytes.
	OldDigest [sha256.Size]byte
	NewDigest [sha256.Size]byte
	// Ops has one entry per class of the new archive, in archive order:
	// PayloadOp takes the next class from the payload archive; any other
	// value copies the old archive's class at that ordinal.
	Ops []int
	// Payload is a complete packed archive holding the payload classes
	// in op order; empty when every class is a copy.
	Payload []byte
}

// PayloadClasses counts the ops satisfied from the payload archive.
func (p *Patch) PayloadClasses() int {
	n := 0
	for _, op := range p.Ops {
		if op == PayloadOp {
			n++
		}
	}
	return n
}

// Encode serializes the patch.
func (p *Patch) Encode() []byte {
	out := make([]byte, 0, 7+2*sha256.Size+len(p.Ops)+len(p.Payload)+3*varint.MaxLen64+4)
	out = append(out, Magic[:]...)
	out = append(out, PatchVersion, p.NewVersion, p.NewOptions)
	out = varint.AppendUint(out, uint64(p.ChunkClasses))
	out = append(out, p.OldDigest[:]...)
	out = append(out, p.NewDigest[:]...)
	out = varint.AppendUint(out, uint64(len(p.Ops)))
	for _, op := range p.Ops {
		if op == PayloadOp {
			out = varint.AppendUint(out, 0)
		} else {
			out = varint.AppendUint(out, uint64(op)+1)
		}
	}
	out = varint.AppendUint(out, uint64(len(p.Payload)))
	out = append(out, p.Payload...)
	c := crc32.Checksum(out, crcTable)
	return append(out, byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
}

// Parse decodes and validates a CJPD patch. maxOps caps the class count
// a patch may describe (the caller passes its effective MaxClassCount);
// a patch over the cap fails wrapping corrupt.ErrTooLarge. All other
// failures caused by the bytes are *corrupt.Error values. The returned
// Payload aliases data.
func Parse(data []byte, maxOps int) (*Patch, error) {
	// Smallest possible patch: fixed fields, three 1-byte varints, CRC.
	if len(data) < 4+3+1+2*sha256.Size+1+1+4 {
		return nil, corrupt.Errorf(sPatch, int64(len(data)), "patch too short (%d bytes)", len(data))
	}
	if data[0] != Magic[0] || data[1] != Magic[1] || data[2] != Magic[2] || data[3] != Magic[3] {
		return nil, corrupt.Errorf(sPatch, 0, "not a CJPD patch")
	}
	// Verify the whole-patch checksum before trusting any field.
	body := data[:len(data)-4]
	want := uint32(data[len(data)-4])<<24 | uint32(data[len(data)-3])<<16 |
		uint32(data[len(data)-2])<<8 | uint32(data[len(data)-1])
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, corrupt.Errorf(sPatch, int64(len(body)), "patch checksum %08x, want %08x", got, want)
	}
	if data[4] != PatchVersion {
		return nil, corrupt.Errorf(sPatch, 4, "unsupported patch version %d", data[4])
	}
	p := &Patch{NewVersion: data[5], NewOptions: data[6]}
	if p.NewVersion != 2 && p.NewVersion != 3 {
		return nil, corrupt.Errorf(sPatch, 5, "patch targets unsupported container version %d", p.NewVersion)
	}
	pos := 7
	next := func(what string) (uint64, error) {
		v, n, err := varint.Uint(body[pos:])
		if err != nil {
			return 0, corrupt.Errorf(sPatch, int64(pos), "%s: %v", what, err)
		}
		pos += n
		return v, nil
	}
	chunkClasses, err := next("chunk size")
	if err != nil {
		return nil, err
	}
	if chunkClasses > math.MaxInt32 {
		return nil, corrupt.Errorf(sPatch, int64(pos), "implausible chunk size %d", chunkClasses)
	}
	p.ChunkClasses = int(chunkClasses)
	if (p.NewVersion == 3) != (p.ChunkClasses > 0) {
		return nil, corrupt.Errorf(sPatch, int64(pos),
			"version-%d patch with chunk size %d", p.NewVersion, p.ChunkClasses)
	}
	if len(body)-pos < 2*sha256.Size {
		return nil, corrupt.Errorf(sPatch, int64(pos), "patch truncated in digests")
	}
	copy(p.OldDigest[:], body[pos:])
	copy(p.NewDigest[:], body[pos+sha256.Size:])
	pos += 2 * sha256.Size
	numOps, err := next("op count")
	if err != nil {
		return nil, err
	}
	if maxOps > 0 && numOps > uint64(maxOps) {
		return nil, corrupt.TooLarge(sPatch, int64(pos), "patch describes %d classes, cap %d", numOps, maxOps)
	}
	// Every op takes at least one byte, so a larger count is a lie; the
	// bound also keeps the allocation proportional to real input.
	if numOps > uint64(len(body)-pos) {
		return nil, corrupt.Errorf(sPatch, int64(pos),
			"implausible op count %d for %d remaining bytes", numOps, len(body)-pos)
	}
	p.Ops = make([]int, 0, numOps)
	for i := uint64(0); i < numOps; i++ {
		op, err := next("op")
		if err != nil {
			return nil, err
		}
		if op > math.MaxInt32 {
			return nil, corrupt.Errorf(sPatch, int64(pos), "implausible copy ordinal %d", op-1)
		}
		p.Ops = append(p.Ops, int(op)-1)
	}
	payloadLen, err := next("payload length")
	if err != nil {
		return nil, err
	}
	if payloadLen != uint64(len(body)-pos) {
		return nil, corrupt.Errorf(sPatch, int64(pos),
			"payload declares %d bytes, %d present", payloadLen, len(body)-pos)
	}
	if payloadLen > 0 {
		p.Payload = body[pos:]
	}
	return p, nil
}
