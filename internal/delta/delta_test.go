package delta

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"

	"classpack/internal/corrupt"
)

func samplePatch() *Patch {
	p := &Patch{
		NewVersion:   3,
		NewOptions:   0x36,
		ChunkClasses: 64,
		Ops:          []int{0, PayloadOp, 2, PayloadOp, 7},
		Payload:      []byte("CJP1 pretend payload archive bytes"),
	}
	p.OldDigest = sha256.Sum256([]byte("old"))
	p.NewDigest = sha256.Sum256([]byte("new"))
	return p
}

func TestPatchRoundTrip(t *testing.T) {
	p := samplePatch()
	enc := p.Encode()
	got, err := Parse(enc, 0)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.NewVersion != p.NewVersion || got.NewOptions != p.NewOptions ||
		got.ChunkClasses != p.ChunkClasses {
		t.Fatalf("header fields: got %+v", got)
	}
	if got.OldDigest != p.OldDigest || got.NewDigest != p.NewDigest {
		t.Fatal("digest mismatch")
	}
	if len(got.Ops) != len(p.Ops) {
		t.Fatalf("ops: got %v want %v", got.Ops, p.Ops)
	}
	for i := range p.Ops {
		if got.Ops[i] != p.Ops[i] {
			t.Fatalf("op %d: got %d want %d", i, got.Ops[i], p.Ops[i])
		}
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Fatal("payload mismatch")
	}
	if got.PayloadClasses() != 2 {
		t.Fatalf("PayloadClasses = %d, want 2", got.PayloadClasses())
	}
}

func TestPatchRoundTripEmptyPayload(t *testing.T) {
	p := samplePatch()
	p.NewVersion, p.ChunkClasses = 2, 0
	p.Ops = []int{1, 0}
	p.Payload = nil
	got, err := Parse(p.Encode(), 0)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.Payload != nil || got.PayloadClasses() != 0 {
		t.Fatalf("got payload %q", got.Payload)
	}
}

// TestPatchParseRejects drives Parse over a matrix of corruptions; every
// one must fail with a *corrupt.Error and never panic.
func TestPatchParseRejects(t *testing.T) {
	valid := samplePatch().Encode()
	cases := map[string][]byte{
		"empty":     nil,
		"short":     valid[:20],
		"badmagic":  append([]byte("XXXX"), valid[4:]...),
		"truncated": valid[:len(valid)-9],
	}
	for i := 0; i < len(valid); i += 7 {
		mut := bytes.Clone(valid)
		mut[i] ^= 0x40
		cases["bitflip@"+string(rune('0'+i%10))+"_"+t.Name()] = mut
	}
	for name, data := range cases {
		if bytes.Equal(data, valid) {
			continue
		}
		_, err := Parse(data, 0)
		if err == nil {
			t.Fatalf("%s: Parse accepted corrupt patch", name)
		}
		if _, ok := corrupt.As(err); !ok {
			t.Fatalf("%s: error %v is not a corrupt.Error", name, err)
		}
	}
}

func TestPatchParseOpsCap(t *testing.T) {
	p := samplePatch()
	_, err := Parse(p.Encode(), 3) // patch has 5 ops
	if err == nil || !errors.Is(err, corrupt.ErrTooLarge) {
		t.Fatalf("want ErrTooLarge for over-cap ops, got %v", err)
	}
	if _, err := Parse(p.Encode(), 5); err != nil {
		t.Fatalf("cap equal to op count must pass: %v", err)
	}
}

func TestPatchVersionConsistency(t *testing.T) {
	p := samplePatch()
	p.NewVersion = 2 // but ChunkClasses stays 64: inconsistent
	if _, err := Parse(p.Encode(), 0); err == nil {
		t.Fatal("version-2 patch with nonzero chunk size accepted")
	}
	p = samplePatch()
	p.NewVersion = 1
	if _, err := Parse(p.Encode(), 0); err == nil {
		t.Fatal("version-1 target accepted")
	}
}
