package custom

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"classpack/internal/corrupt"
)

// TestExpandNeverPanicsOnCorruptInput ports the core decoder's
// corrupt-input pattern to the §7.2 custom-opcode decode path: mutated
// dictionaries and sequences must produce clean corrupt errors or a
// budget-bounded expansion, never a panic or unbounded output.
func TestExpandNeverPanicsOnCorruptInput(t *testing.T) {
	const base = 200
	const budget = int64(1) << 20
	seqs := [][]byte{
		bytes.Repeat([]byte{1, 2, 3}, 50),
		bytes.Repeat([]byte{9, 9, 4, 7}, 40),
	}
	work, dict := Compress(seqs, base, 8)
	dictBytes := marshalDict(dict)
	seqBytes := Serialize(work[0])

	rng := rand.New(rand.NewSource(99))
	try := func(db, sb []byte) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("custom decode panicked: %v", r)
			}
		}()
		seq, err := Deserialize(sb)
		if err != nil {
			return
		}
		out, err := ExpandChecked([][]int{seq}, fuzzDict(db), base, budget)
		if err != nil {
			if _, ok := corrupt.As(err); !ok {
				t.Fatalf("non-corrupt decode error: %v", err)
			}
			return
		}
		if n := int64(len(out[0])); n > budget {
			t.Fatalf("expanded %d bytes past the %d budget", n, budget)
		}
	}

	// Single-byte flips in each input.
	for trial := 0; trial < 2000; trial++ {
		db := append([]byte(nil), dictBytes...)
		sb := append([]byte(nil), seqBytes...)
		if len(db) > 0 && trial%2 == 0 {
			db[rng.Intn(len(db))] ^= byte(1 + rng.Intn(255))
		} else if len(sb) > 0 {
			sb[rng.Intn(len(sb))] ^= byte(1 + rng.Intn(255))
		}
		try(db, sb)
	}
	// Truncations of both inputs.
	for cut := 0; cut <= len(dictBytes); cut++ {
		try(dictBytes[:cut], seqBytes)
	}
	for cut := 0; cut <= len(seqBytes); cut++ {
		try(dictBytes, seqBytes[:cut])
	}
	// Pure garbage.
	for trial := 0; trial < 500; trial++ {
		db := make([]byte, rng.Intn(64))
		sb := make([]byte, rng.Intn(128))
		rng.Read(db)
		rng.Read(sb)
		try(db, sb)
	}
}

// TestExpandCheckedRejectsBombs pins the two adversarial dictionary
// shapes the iterative expander exists for: exponential growth from a
// chain of self-doubling entries, and reference cycles.
func TestExpandCheckedRejectsBombs(t *testing.T) {
	const base = 2
	// Entry i expands to two copies of symbol base+i-1: 40 entries give
	// 2^40 bytes from one symbol.
	var dict []Pair
	for i := 0; i < 40; i++ {
		s := base + i - 1
		if i == 0 {
			s = 0
		}
		dict = append(dict, Pair{First: s, Second: s})
	}
	seq := []int{base + 39}
	_, err := ExpandChecked([][]int{seq}, dict, base, 1<<20)
	if err == nil {
		t.Fatal("2^40-byte expansion accepted")
	}
	if _, ok := corrupt.As(err); !ok || !errors.Is(err, corrupt.ErrTooLarge) {
		t.Fatalf("bomb rejection = %v, want a too-large corrupt error", err)
	}

	// A self-referencing entry is caught by CheckDict before expansion.
	cyclic := []Pair{{First: base, Second: 0}}
	if _, err := ExpandChecked([][]int{{base}}, cyclic, base, 1<<20); err == nil {
		t.Fatal("cyclic dictionary accepted")
	}
}
