package custom

import (
	"bytes"
	"math/rand"
	"testing"

	"classpack/internal/archive"
)

func roundTrip(t *testing.T, seqs [][]byte, maxNew int) ([][]int, []Pair) {
	t.Helper()
	rewritten, dict := Compress(seqs, 256, maxNew)
	back := Expand(rewritten, dict, 256)
	if len(back) != len(seqs) {
		t.Fatalf("got %d sequences, want %d", len(back), len(seqs))
	}
	for i := range seqs {
		if !bytes.Equal(back[i], seqs[i]) {
			t.Fatalf("sequence %d: expand(compress) != identity\n got %v\nwant %v",
				i, back[i], seqs[i])
		}
	}
	return rewritten, dict
}

func TestRoundTripSimplePatterns(t *testing.T) {
	seqs := [][]byte{
		bytes.Repeat([]byte{1, 2, 3}, 50),
		bytes.Repeat([]byte{1, 2, 9, 1, 2}, 30),
		{5},
		{},
	}
	rewritten, dict := roundTrip(t, seqs, 16)
	if len(dict) == 0 {
		t.Fatal("no custom opcodes introduced on a repetitive stream")
	}
	before, after := 0, 0
	for i := range seqs {
		before += len(seqs[i])
		after += len(rewritten[i])
	}
	if after >= before {
		t.Fatalf("symbol count grew: %d -> %d", before, after)
	}
}

func TestRoundTripSkipPatterns(t *testing.T) {
	// aload_0 (42), varying register, getfield-like (180): the classic
	// skip-pair pattern.
	var seq []byte
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		seq = append(seq, 42, byte(rng.Intn(8)), 180)
	}
	rewritten, dict := roundTrip(t, [][]byte{seq}, 8)
	hasSkip := false
	for _, p := range dict {
		if p.Skip {
			hasSkip = true
		}
	}
	if !hasSkip {
		t.Log("dict:", dict)
		t.Fatal("no skip pair selected for a skip-dominated stream")
	}
	if len(rewritten[0]) >= len(seq) {
		t.Fatal("skip rewriting did not shrink the stream")
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		var seqs [][]byte
		for s := 0; s < 1+rng.Intn(5); s++ {
			// Skewed alphabet gives pairs to find.
			seq := make([]byte, rng.Intn(600))
			for i := range seq {
				seq[i] = byte(rng.Intn(12))
			}
			seqs = append(seqs, seq)
		}
		roundTrip(t, seqs, 20)
	}
}

func TestNestedPairs(t *testing.T) {
	// Force hierarchical pairs: (1 2) repeated then ((1 2) 3).
	seq := bytes.Repeat([]byte{1, 2, 3, 1, 2, 3, 1, 2, 4}, 40)
	_, dict := roundTrip(t, [][]byte{seq}, 10)
	nested := false
	for _, p := range dict {
		if p.First >= 256 || p.Second >= 256 {
			nested = true
		}
	}
	if !nested {
		t.Log("dict:", dict)
		t.Skip("greedy order did not nest this time; round trip already verified")
	}
}

func TestMaxNewRespected(t *testing.T) {
	seq := bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 100)
	_, dict := Compress([][]byte{seq}, 256, 3)
	if len(dict) > 3 {
		t.Fatalf("dict has %d entries, max 3", len(dict))
	}
}

func TestSerializeEscapes(t *testing.T) {
	seq := []int{0, 255, 256, 1000, 42}
	data := Serialize(seq)
	if len(data) <= len(seq) {
		t.Fatalf("escaped serialization too short: %d", len(data))
	}
	// Must remain DEFLATE-able (sanity for the Table 4 measurement).
	if archive.FlateSize(data) <= 0 {
		t.Fatal("FlateSize failed")
	}
}

func TestPaperObservationGzipGainIsSmall(t *testing.T) {
	// §7.2: custom opcodes shrink the symbol count a lot, but gzip of the
	// rewritten stream is only slightly better (or worse) than gzip of the
	// original. Verify the measurement machinery reproduces a bounded gap.
	rng := rand.New(rand.NewSource(33))
	var seqs [][]byte
	for s := 0; s < 40; s++ {
		seq := make([]byte, 400)
		for i := range seq {
			// Markov-ish stream: strong pair structure.
			if i > 0 && rng.Intn(3) > 0 {
				seq[i] = seq[i-1] + 1
			} else {
				seq[i] = byte(rng.Intn(40))
			}
		}
		seqs = append(seqs, seq)
	}
	rewritten, _ := Compress(seqs, 256, 64)
	var origCat, newCat []byte
	origSyms, newSyms := 0, 0
	for i := range seqs {
		origCat = append(origCat, seqs[i]...)
		newCat = append(newCat, Serialize(rewritten[i])...)
		origSyms += len(seqs[i])
		newSyms += len(rewritten[i])
	}
	if newSyms >= origSyms {
		t.Fatalf("symbol count did not shrink: %d -> %d", origSyms, newSyms)
	}
	origGz := archive.FlateSize(origCat)
	newGz := archive.FlateSize(newCat)
	// The gzipped sizes must be in the same ballpark (within 2x either
	// way); a huge win would contradict the paper's finding.
	if newGz > origGz*2 || origGz > newGz*2 {
		t.Fatalf("gzipped sizes diverge: orig %d vs custom %d", origGz, newGz)
	}
}
