package custom

import (
	"bytes"
	"encoding/binary"
	"testing"

	"classpack/internal/corrupt"
)

// Dictionary wire shape used by the fuzzer: 5 bytes per entry — LE16
// First, LE16 Second, low bit of the fifth byte is Skip.
func fuzzDict(data []byte) []Pair {
	var dict []Pair
	for i := 0; i+5 <= len(data); i += 5 {
		dict = append(dict, Pair{
			First:  int(binary.LittleEndian.Uint16(data[i:])),
			Second: int(binary.LittleEndian.Uint16(data[i+2:])),
			Skip:   data[i+4]&1 == 1,
		})
	}
	return dict
}

func marshalDict(dict []Pair) []byte {
	out := make([]byte, 0, 5*len(dict))
	for _, p := range dict {
		out = binary.LittleEndian.AppendUint16(out, uint16(p.First))
		out = binary.LittleEndian.AppendUint16(out, uint16(p.Second))
		b := byte(0)
		if p.Skip {
			b = 1
		}
		out = append(out, b)
	}
	return out
}

// FuzzCustomDecode drives the untrusted custom-opcode decode path:
// Deserialize the sequence, validate the dictionary, expand under a
// byte budget. No input may panic, blow the budget, or fail with a
// non-corrupt error; valid input must agree with the trusting Expand.
func FuzzCustomDecode(f *testing.F) {
	const base = 200
	const budget = int64(1) << 20

	seqs := [][]byte{
		bytes.Repeat([]byte{1, 2, 3}, 40),
		bytes.Repeat([]byte{9, 9, 4, 7}, 30),
	}
	work, dict := Compress(seqs, base, 8)
	f.Add(marshalDict(dict), Serialize(work[0]))
	f.Add(marshalDict(dict), Serialize(work[1]))
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0, 0, 0, 0, 1}, []byte{255, 200})

	f.Fuzz(func(t *testing.T, dictBytes, seqBytes []byte) {
		dict := fuzzDict(dictBytes)
		seq, err := Deserialize(seqBytes)
		if err != nil {
			if _, ok := corrupt.As(err); !ok {
				t.Fatalf("non-corrupt deserialize error: %v", err)
			}
			return
		}
		out, err := ExpandChecked([][]int{seq}, dict, base, budget)
		if err != nil {
			if _, ok := corrupt.As(err); !ok {
				t.Fatalf("non-corrupt expand error: %v", err)
			}
			return
		}
		if n := int64(len(out[0])); n > budget {
			t.Fatalf("expanded %d bytes past the %d budget", n, budget)
		}
		// A dictionary that passed CheckDict is safe for the trusting
		// expander too; the two must agree.
		want := Expand([][]int{seq}, dict, base)
		if !bytes.Equal(out[0], want[0]) {
			t.Fatalf("ExpandChecked disagrees with Expand:\n  checked: %x\n  trusted: %x", out[0], want[0])
		}
	})
}
