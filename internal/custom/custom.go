// Package custom implements the custom-opcode competitor of §7.2
// [EEF+97, FP95]: a greedy search for pairs of adjacent opcodes (and
// skip-pairs, which allow one slot between the combined opcodes) whose
// replacement by a fresh opcode most reduces the Huffman-entropy estimate
// of the stream, recalculating frequencies after each introduction.
// The paper found the approach decreased opcode counts substantially but
// barely improved the gzipped size; the Table 4 bench reproduces that.
package custom

import (
	"math"

	"classpack/internal/corrupt"
	"classpack/internal/encoding/varint"
)

// Pair is one dictionary entry: a fresh symbol expanding to First and
// Second, with one passed-through slot between them when Skip is set.
type Pair struct {
	First, Second int
	Skip          bool
}

// entropyBits estimates the Huffman-coded size of a stream with the given
// symbol counts: a symbol with probability p costs log2(1/p) bits.
func entropyBits(counts map[int]int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	bits := 0.0
	for _, c := range counts {
		if c > 0 {
			bits += float64(c) * math.Log2(float64(total)/float64(c))
		}
	}
	return bits
}

type candidate struct {
	pair  Pair
	count int
}

// gatherCandidates counts adjacent pairs and skip-pairs across sequences.
// Skip symbols never participate in later pairs (as member or skipped
// middle): a skip symbol must stay directly followed by its inline middle
// for expansion to be well defined.
func gatherCandidates(seqs [][]int, isSkip func(int) bool) []candidate {
	pairCount := map[Pair]int{}
	for _, seq := range seqs {
		for i := 0; i+1 < len(seq); i++ {
			a, b := seq[i], seq[i+1]
			if !isSkip(a) && !isSkip(b) {
				pairCount[Pair{First: a, Second: b}]++
			}
			if i+2 < len(seq) && !isSkip(a) && !isSkip(b) && !isSkip(seq[i+2]) {
				pairCount[Pair{First: a, Second: seq[i+2], Skip: true}]++
			}
		}
	}
	cands := make([]candidate, 0, len(pairCount))
	for p, c := range pairCount {
		if c > 1 {
			cands = append(cands, candidate{pair: p, count: c})
		}
	}
	return cands
}

// rewrite replaces non-overlapping occurrences of p (left to right) with
// symbol sym and returns the number of replacements. A skip match never
// consumes a skip symbol's inline middle slot.
func rewrite(seq []int, p Pair, sym int, isSkip func(int) bool) ([]int, int) {
	out := seq[:0:0]
	n := 0
	i := 0
	for i < len(seq) {
		switch {
		case !p.Skip && i+1 < len(seq) && seq[i] == p.First && seq[i+1] == p.Second &&
			(i == 0 || !isSkip(out[len(out)-1])):
			out = append(out, sym)
			i += 2
			n++
		case p.Skip && i+2 < len(seq) && seq[i] == p.First && seq[i+2] == p.Second &&
			!isSkip(seq[i+1]) && (i == 0 || !isSkip(out[len(out)-1])):
			out = append(out, sym, seq[i+1])
			i += 3
			n++
		default:
			out = append(out, seq[i])
			i++
		}
	}
	return out, n
}

// countSymbols tallies the current symbol frequencies.
func countSymbols(seqs [][]int) map[int]int {
	counts := map[int]int{}
	for _, seq := range seqs {
		for _, s := range seq {
			counts[s]++
		}
	}
	return counts
}

// Compress greedily introduces up to maxNew custom opcodes over the given
// byte sequences (one per method). base is the size of the original
// alphabet; new symbols are numbered from base upward. It returns the
// rewritten sequences and the dictionary, in introduction order.
func Compress(seqs [][]byte, base, maxNew int) ([][]int, []Pair) {
	work := make([][]int, len(seqs))
	for i, s := range seqs {
		work[i] = make([]int, len(s))
		for j, b := range s {
			work[i][j] = int(b)
		}
	}
	var dict []Pair
	isSkip := func(sym int) bool {
		return sym >= base && dict[sym-base].Skip
	}
	for len(dict) < maxNew {
		cands := gatherCandidates(work, isSkip)
		if len(cands) == 0 {
			break
		}
		// Evaluate the most frequent candidates exactly: simulate the
		// frequency table after replacement and compare entropy estimates.
		counts := countSymbols(work)
		before := entropyBits(counts)
		bestGain := 0.0
		var best candidate
		// Limit exact evaluation to the densest candidates.
		topK := 32
		if len(cands) < topK {
			topK = len(cands)
		}
		partialSortByCount(cands, topK)
		for _, c := range cands[:topK] {
			after := simulateEntropy(counts, c, base+len(dict))
			if gain := before - after; gain > bestGain {
				bestGain = gain
				best = c
			}
		}
		if bestGain <= 0 {
			break
		}
		sym := base + len(dict)
		dict = append(dict, best.pair)
		total := 0
		for i := range work {
			var n int
			work[i], n = rewrite(work[i], best.pair, sym, isSkip)
			total += n
		}
		if total == 0 {
			dict = dict[:len(dict)-1]
			break
		}
	}
	return work, dict
}

// simulateEntropy estimates the stream entropy after replacing cand.count
// occurrences of the pair with a new symbol. The estimate treats the
// count as achievable, which overestimates gain for self-overlapping
// pairs; the greedy loop tolerates that.
func simulateEntropy(counts map[int]int, c candidate, sym int) float64 {
	sim := make(map[int]int, len(counts)+1)
	for k, v := range counts {
		sim[k] = v
	}
	sim[c.pair.First] -= c.count
	sim[c.pair.Second] -= c.count
	if sim[c.pair.First] < 0 {
		sim[c.pair.First] = 0
	}
	if sim[c.pair.Second] < 0 {
		sim[c.pair.Second] = 0
	}
	sim[sym] = c.count
	return entropyBits(sim)
}

// partialSortByCount moves the k highest-count candidates to the front.
func partialSortByCount(cands []candidate, k int) {
	for i := 0; i < k; i++ {
		maxIdx := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].count > cands[maxIdx].count {
				maxIdx = j
			}
		}
		cands[i], cands[maxIdx] = cands[maxIdx], cands[i]
	}
}

// Expand reverses Compress given the dictionary and base alphabet size.
func Expand(seqs [][]int, dict []Pair, base int) [][]byte {
	out := make([][]byte, len(seqs))
	for i, seq := range seqs {
		out[i] = expandSeq(seq, dict, base, nil)
	}
	return out
}

func expandSeq(seq []int, dict []Pair, base int, dst []byte) []byte {
	for i := 0; i < len(seq); i++ {
		sym := seq[i]
		if sym < base {
			dst = append(dst, byte(sym))
			continue
		}
		p := dict[sym-base]
		if p.Skip {
			// NEW, x expands to First, x, Second.
			dst = expandSym(p.First, dict, base, dst)
			i++
			if i < len(seq) {
				dst = expandSym(seq[i], dict, base, dst)
			}
			dst = expandSym(p.Second, dict, base, dst)
		} else {
			dst = expandSym(p.First, dict, base, dst)
			dst = expandSym(p.Second, dict, base, dst)
		}
	}
	return dst
}

// expandSym recursively expands one symbol (custom opcodes may nest).
func expandSym(sym int, dict []Pair, base int, dst []byte) []byte {
	if sym < base {
		return append(dst, byte(sym))
	}
	p := dict[sym-base]
	// Nested skip symbols cannot occur: skip symbols never participate in
	// later pairs (enforced by gatherCandidates/rewrite).
	dst = expandSym(p.First, dict, base, dst)
	return expandSym(p.Second, dict, base, dst)
}

// Serialize turns a rewritten symbol sequence into bytes for DEFLATE
// measurement (symbols above 255 take a varint escape).
func Serialize(seq []int) []byte {
	var out []byte
	for _, s := range seq {
		if s < 255 {
			out = append(out, byte(s))
		} else {
			out = append(out, 255)
			out = varint.AppendUint(out, uint64(s-255))
		}
	}
	return out
}

// maxSymbol bounds deserialized symbol values; Compress never issues
// more than a few hundred custom opcodes, so anything near int range is
// corrupt (and would overflow the +255 un-escape below).
const maxSymbol = 1 << 20

// Deserialize reverses Serialize. Input is untrusted: escape values are
// bounded so symbols stay well inside int range.
func Deserialize(data []byte) ([]int, error) {
	var out []int
	pos := 0
	for pos < len(data) {
		b := data[pos]
		pos++
		if b < 255 {
			out = append(out, int(b))
			continue
		}
		v, n, err := varint.Uint(data[pos:])
		if err != nil {
			return nil, corrupt.Errorf("custom", int64(pos), "symbol escape: %v", err)
		}
		pos += n
		if v > maxSymbol {
			return nil, corrupt.Errorf("custom", int64(pos), "symbol %d out of range", v+255)
		}
		out = append(out, int(v)+255)
	}
	return out, nil
}

// CheckDict validates a decoded dictionary against the invariants
// Compress maintains: entry i expands only to plain symbols (< base) or
// earlier custom symbols (< base+i), and never to a skip symbol. Those
// invariants make expansion acyclic and well defined; a dictionary that
// violates them is corrupt.
func CheckDict(dict []Pair, base int) error {
	if base < 1 || base > maxSymbol {
		return corrupt.Errorf("custom", -1, "alphabet base %d out of range", base)
	}
	for i, p := range dict {
		for _, s := range [2]int{p.First, p.Second} {
			if s < 0 || s >= base+i {
				return corrupt.Errorf("custom", int64(i),
					"dictionary entry %d references symbol %d outside [0,%d)", i, s, base+i)
			}
			if s >= base && dict[s-base].Skip {
				return corrupt.Errorf("custom", int64(i),
					"dictionary entry %d references skip symbol %d", i, s)
			}
		}
	}
	return nil
}

// expander performs symbol expansion iteratively with an output budget,
// so an adversarial dictionary can neither exhaust the goroutine stack
// (deep reference chains) nor memory (each entry can double the output,
// giving 2^n growth from n entries).
type expander struct {
	dict   []Pair
	base   int
	budget int64
}

func (e *expander) sym(sym int, dst []byte) ([]byte, error) {
	stack := []int{sym}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s < e.base {
			if e.budget--; e.budget < 0 {
				return nil, corrupt.TooLarge("custom", -1, "expansion exceeds output cap")
			}
			dst = append(dst, byte(s))
			continue
		}
		p := e.dict[s-e.base]
		stack = append(stack, p.Second, p.First) // First pops (and expands) first
	}
	return dst, nil
}

// ExpandChecked is Expand for untrusted input: the dictionary must pass
// CheckDict, every sequence symbol is range-checked, and the total
// expanded output across all sequences is capped at maxBytes (an error
// wrapping corrupt.ErrTooLarge past it).
func ExpandChecked(seqs [][]int, dict []Pair, base int, maxBytes int64) ([][]byte, error) {
	if err := CheckDict(dict, base); err != nil {
		return nil, err
	}
	e := &expander{dict: dict, base: base, budget: maxBytes}
	out := make([][]byte, len(seqs))
	for i, seq := range seqs {
		var dst []byte
		for j := 0; j < len(seq); j++ {
			sym := seq[j]
			if sym < 0 || sym >= base+len(dict) {
				return nil, corrupt.Errorf("custom", int64(j), "symbol %d outside alphabet", sym)
			}
			var err error
			if sym >= base && dict[sym-base].Skip {
				p := dict[sym-base]
				if dst, err = e.sym(p.First, dst); err != nil {
					return nil, err
				}
				j++
				if j < len(seq) {
					mid := seq[j]
					if mid < 0 || mid >= base+len(dict) {
						return nil, corrupt.Errorf("custom", int64(j), "symbol %d outside alphabet", mid)
					}
					if mid >= base && dict[mid-base].Skip {
						return nil, corrupt.Errorf("custom", int64(j), "skip symbol %d in a skip middle slot", mid)
					}
					if dst, err = e.sym(mid, dst); err != nil {
						return nil, err
					}
				}
				dst, err = e.sym(p.Second, dst)
			} else {
				dst, err = e.sym(sym, dst)
			}
			if err != nil {
				return nil, err
			}
		}
		out[i] = dst
	}
	return out, nil
}
