package verifier

import (
	"fmt"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
)

// Frame manipulation with type checking.

func (v *mverifier) push(f *frame, ts ...vtype) error {
	if len(f.stack)+len(ts) > int(v.code.MaxStack) {
		return fmt.Errorf("push exceeds max_stack %d", v.code.MaxStack)
	}
	f.stack = append(f.stack, ts...)
	return nil
}

func pop(f *frame, want vtype) error {
	if len(f.stack) == 0 {
		return fmt.Errorf("stack underflow, wanted %v", want)
	}
	got := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	if got != want {
		return fmt.Errorf("popped %v, wanted %v", got, want)
	}
	return nil
}

// popAny pops one category-1 slot of any concrete type.
func popAny(f *frame) (vtype, error) {
	if len(f.stack) == 0 {
		return tTop, fmt.Errorf("stack underflow")
	}
	got := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	switch got {
	case tInt, tFloat, tRef:
		return got, nil
	default:
		return got, fmt.Errorf("popped %v where a category-1 value was needed", got)
	}
}

func popLong(f *frame) error {
	if err := pop(f, tLong2); err != nil {
		return err
	}
	return pop(f, tLong)
}

func popDouble(f *frame) error {
	if err := pop(f, tDouble2); err != nil {
		return err
	}
	return pop(f, tDouble)
}

// popType pops slots for a descriptor type.
func (v *mverifier) popType(f *frame, t classfile.Type) error {
	slots := typeSlots(t)
	for i := len(slots) - 1; i >= 0; i-- {
		if err := pop(f, slots[i]); err != nil {
			return err
		}
	}
	return nil
}

// killSlot invalidates wide pairs overlapping an overwritten local.
func killSlot(f *frame, slot int) {
	if slot > 0 && (f.locals[slot-1] == tLong || f.locals[slot-1] == tDouble) {
		f.locals[slot-1] = tTop
	}
	if (f.locals[slot] == tLong || f.locals[slot] == tDouble) && slot+1 < len(f.locals) {
		f.locals[slot+1] = tTop
	}
}

func (v *mverifier) store(f *frame, slot int, ts ...vtype) error {
	if slot+len(ts) > len(f.locals) {
		return fmt.Errorf("store to local %d exceeds max_locals %d", slot, len(f.locals))
	}
	// Invalidate wide pairs straddling the written range, then write.
	killSlot(f, slot)
	end := slot + len(ts) - 1
	if end != slot {
		killSlot(f, end)
	}
	copy(f.locals[slot:], ts)
	return nil
}

func (v *mverifier) load(f *frame, slot int, want vtype) error {
	if slot >= len(f.locals) {
		return fmt.Errorf("load of local %d exceeds max_locals %d", slot, len(f.locals))
	}
	if f.locals[slot] != want {
		return fmt.Errorf("local %d holds %v, wanted %v", slot, f.locals[slot], want)
	}
	if want == tLong || want == tDouble {
		if slot+1 >= len(f.locals) || f.locals[slot+1] != want+1 {
			return fmt.Errorf("local %d missing second slot of %v", slot, want)
		}
	}
	return nil
}

// Constant-pool lookups.

func (v *mverifier) fieldType(idx int) (classfile.Type, error) {
	cf := v.cf
	if idx <= 0 || idx >= len(cf.Pool) || cf.Pool[idx].Kind != classfile.KindFieldref {
		return classfile.Type{}, fmt.Errorf("index %d is not a Fieldref", idx)
	}
	nat := cf.Pool[cf.Pool[idx].NameAndType]
	return classfile.ParseFieldDescriptor(cf.Utf8At(nat.Desc))
}

func (v *mverifier) methodType(idx int, wantIface bool) ([]classfile.Type, classfile.Type, error) {
	cf := v.cf
	if idx <= 0 || idx >= len(cf.Pool) {
		return nil, classfile.Type{}, fmt.Errorf("method index %d out of range", idx)
	}
	kind := cf.Pool[idx].Kind
	if wantIface && kind != classfile.KindInterfaceMethodref {
		return nil, classfile.Type{}, fmt.Errorf("index %d is %v, not InterfaceMethodref", idx, kind)
	}
	if !wantIface && kind != classfile.KindMethodref {
		return nil, classfile.Type{}, fmt.Errorf("index %d is %v, not Methodref", idx, kind)
	}
	nat := cf.Pool[cf.Pool[idx].NameAndType]
	return classfile.ParseMethodDescriptor(cf.Utf8At(nat.Desc))
}

// interpret processes the single instruction at off, flowing the result to
// its successors.
func (v *mverifier) interpret(off int) error {
	idx := v.byOffset[off]
	in := &v.insns[idx]
	f := v.states[off].clone()
	// Locals at this point are visible to every covering handler.
	if err := v.handlersCovering(off, &f); err != nil {
		return err
	}
	terminal := false
	var extraTargets []int

	op := in.Op
	switch {
	case op == bytecode.Nop:
	case op == bytecode.AconstNull:
		if err := v.push(&f, tRef); err != nil {
			return err
		}
	case op >= bytecode.IconstM1 && op <= bytecode.Iconst5 ||
		op == bytecode.Bipush || op == bytecode.Sipush:
		if err := v.push(&f, tInt); err != nil {
			return err
		}
	case op == bytecode.Lconst0 || op == bytecode.Lconst1:
		if err := v.push(&f, tLong, tLong2); err != nil {
			return err
		}
	case op >= bytecode.Fconst0 && op <= bytecode.Fconst2:
		if err := v.push(&f, tFloat); err != nil {
			return err
		}
	case op == bytecode.Dconst0 || op == bytecode.Dconst1:
		if err := v.push(&f, tDouble, tDouble2); err != nil {
			return err
		}
	case op == bytecode.Ldc || op == bytecode.LdcW:
		if in.A <= 0 || in.A >= len(v.cf.Pool) {
			return fmt.Errorf("ldc index %d out of range", in.A)
		}
		switch v.cf.Pool[in.A].Kind {
		case classfile.KindInteger:
			return v.finish(in, &f, terminal, extraTargets, v.push(&f, tInt))
		case classfile.KindFloat:
			return v.finish(in, &f, terminal, extraTargets, v.push(&f, tFloat))
		case classfile.KindString:
			return v.finish(in, &f, terminal, extraTargets, v.push(&f, tRef))
		default:
			return fmt.Errorf("ldc of %v", v.cf.Pool[in.A].Kind)
		}
	case op == bytecode.Ldc2W:
		if in.A <= 0 || in.A >= len(v.cf.Pool) {
			return fmt.Errorf("ldc2_w index %d out of range", in.A)
		}
		switch v.cf.Pool[in.A].Kind {
		case classfile.KindLong:
			return v.finish(in, &f, terminal, extraTargets, v.push(&f, tLong, tLong2))
		case classfile.KindDouble:
			return v.finish(in, &f, terminal, extraTargets, v.push(&f, tDouble, tDouble2))
		default:
			return fmt.Errorf("ldc2_w of %v", v.cf.Pool[in.A].Kind)
		}
	case op == bytecode.Iload || op >= bytecode.Iload0 && op <= bytecode.Iload3:
		if err := v.loadPush(&f, in, bytecode.Iload0, tInt); err != nil {
			return err
		}
	case op == bytecode.Lload || op >= bytecode.Lload0 && op <= bytecode.Lload3:
		if err := v.loadPush(&f, in, bytecode.Lload0, tLong); err != nil {
			return err
		}
	case op == bytecode.Fload || op >= bytecode.Fload0 && op <= bytecode.Fload3:
		if err := v.loadPush(&f, in, bytecode.Fload0, tFloat); err != nil {
			return err
		}
	case op == bytecode.Dload || op >= bytecode.Dload0 && op <= bytecode.Dload3:
		if err := v.loadPush(&f, in, bytecode.Dload0, tDouble); err != nil {
			return err
		}
	case op == bytecode.Aload || op >= bytecode.Aload0 && op <= bytecode.Aload3:
		if err := v.loadPush(&f, in, bytecode.Aload0, tRef); err != nil {
			return err
		}
	case op == bytecode.Istore || op >= bytecode.Istore0 && op <= bytecode.Istore3:
		if err := v.popStore(&f, in, bytecode.Istore0, tInt); err != nil {
			return err
		}
	case op == bytecode.Lstore || op >= bytecode.Lstore0 && op <= bytecode.Lstore3:
		if err := v.popStore(&f, in, bytecode.Lstore0, tLong); err != nil {
			return err
		}
	case op == bytecode.Fstore || op >= bytecode.Fstore0 && op <= bytecode.Fstore3:
		if err := v.popStore(&f, in, bytecode.Fstore0, tFloat); err != nil {
			return err
		}
	case op == bytecode.Dstore || op >= bytecode.Dstore0 && op <= bytecode.Dstore3:
		if err := v.popStore(&f, in, bytecode.Dstore0, tDouble); err != nil {
			return err
		}
	case op == bytecode.Astore || op >= bytecode.Astore0 && op <= bytecode.Astore3:
		if err := v.popStore(&f, in, bytecode.Astore0, tRef); err != nil {
			return err
		}
	case op == bytecode.Iaload || op == bytecode.Baload || op == bytecode.Caload || op == bytecode.Saload:
		if err := v.arrayLoad(&f, tInt); err != nil {
			return err
		}
	case op == bytecode.Faload:
		if err := v.arrayLoad(&f, tFloat); err != nil {
			return err
		}
	case op == bytecode.Aaload:
		if err := v.arrayLoad(&f, tRef); err != nil {
			return err
		}
	case op == bytecode.Laload:
		if err := v.arrayLoadWide(&f, tLong); err != nil {
			return err
		}
	case op == bytecode.Daload:
		if err := v.arrayLoadWide(&f, tDouble); err != nil {
			return err
		}
	case op == bytecode.Iastore || op == bytecode.Bastore || op == bytecode.Castore || op == bytecode.Sastore:
		if err := v.arrayStore(&f, tInt); err != nil {
			return err
		}
	case op == bytecode.Fastore:
		if err := v.arrayStore(&f, tFloat); err != nil {
			return err
		}
	case op == bytecode.Aastore:
		if err := v.arrayStore(&f, tRef); err != nil {
			return err
		}
	case op == bytecode.Lastore:
		if err := popLong(&f); err != nil {
			return err
		}
		if err := pop(&f, tInt); err != nil {
			return err
		}
		if err := pop(&f, tRef); err != nil {
			return err
		}
	case op == bytecode.Dastore:
		if err := popDouble(&f); err != nil {
			return err
		}
		if err := pop(&f, tInt); err != nil {
			return err
		}
		if err := pop(&f, tRef); err != nil {
			return err
		}
	case op == bytecode.Pop:
		if _, err := popAny(&f); err != nil {
			return err
		}
	case op == bytecode.Pop2:
		// Either one category-2 value or two category-1 values.
		if len(f.stack) >= 1 && (f.stack[len(f.stack)-1] == tLong2 || f.stack[len(f.stack)-1] == tDouble2) {
			if f.stack[len(f.stack)-1] == tLong2 {
				if err := popLong(&f); err != nil {
					return err
				}
			} else if err := popDouble(&f); err != nil {
				return err
			}
		} else {
			if _, err := popAny(&f); err != nil {
				return err
			}
			if _, err := popAny(&f); err != nil {
				return err
			}
		}
	case op == bytecode.Dup:
		if len(f.stack) == 0 {
			return fmt.Errorf("dup on empty stack")
		}
		top := f.stack[len(f.stack)-1]
		if top == tLong2 || top == tDouble2 {
			return fmt.Errorf("dup of a category-2 value")
		}
		if err := v.push(&f, top); err != nil {
			return err
		}
	case op == bytecode.DupX1, op == bytecode.DupX2, op == bytecode.Dup2,
		op == bytecode.Dup2X1, op == bytecode.Dup2X2, op == bytecode.Swap:
		if err := v.dupSwap(&f, op); err != nil {
			return err
		}
	case op == bytecode.Iadd || op == bytecode.Isub || op == bytecode.Imul ||
		op == bytecode.Idiv || op == bytecode.Irem || op == bytecode.Iand ||
		op == bytecode.Ior || op == bytecode.Ixor || op == bytecode.Ishl ||
		op == bytecode.Ishr || op == bytecode.Iushr:
		if err := pop(&f, tInt); err != nil {
			return err
		}
		if err := pop(&f, tInt); err != nil {
			return err
		}
		if err := v.push(&f, tInt); err != nil {
			return err
		}
	case op == bytecode.Ladd || op == bytecode.Lsub || op == bytecode.Lmul ||
		op == bytecode.Ldiv || op == bytecode.Lrem || op == bytecode.Land ||
		op == bytecode.Lor || op == bytecode.Lxor:
		if err := popLong(&f); err != nil {
			return err
		}
		if err := popLong(&f); err != nil {
			return err
		}
		if err := v.push(&f, tLong, tLong2); err != nil {
			return err
		}
	case op == bytecode.Lshl || op == bytecode.Lshr || op == bytecode.Lushr:
		if err := pop(&f, tInt); err != nil {
			return err
		}
		if err := popLong(&f); err != nil {
			return err
		}
		if err := v.push(&f, tLong, tLong2); err != nil {
			return err
		}
	case op == bytecode.Fadd || op == bytecode.Fsub || op == bytecode.Fmul ||
		op == bytecode.Fdiv || op == bytecode.Frem:
		if err := pop(&f, tFloat); err != nil {
			return err
		}
		if err := pop(&f, tFloat); err != nil {
			return err
		}
		if err := v.push(&f, tFloat); err != nil {
			return err
		}
	case op == bytecode.Dadd || op == bytecode.Dsub || op == bytecode.Dmul ||
		op == bytecode.Ddiv || op == bytecode.Drem:
		if err := popDouble(&f); err != nil {
			return err
		}
		if err := popDouble(&f); err != nil {
			return err
		}
		if err := v.push(&f, tDouble, tDouble2); err != nil {
			return err
		}
	case op == bytecode.Ineg:
		if err := pop(&f, tInt); err != nil {
			return err
		}
		if err := v.push(&f, tInt); err != nil {
			return err
		}
	case op == bytecode.Lneg:
		if err := popLong(&f); err != nil {
			return err
		}
		if err := v.push(&f, tLong, tLong2); err != nil {
			return err
		}
	case op == bytecode.Fneg:
		if err := pop(&f, tFloat); err != nil {
			return err
		}
		if err := v.push(&f, tFloat); err != nil {
			return err
		}
	case op == bytecode.Dneg:
		if err := popDouble(&f); err != nil {
			return err
		}
		if err := v.push(&f, tDouble, tDouble2); err != nil {
			return err
		}
	case op == bytecode.Iinc:
		if err := v.load(&f, in.A, tInt); err != nil {
			return err
		}
	case op >= bytecode.I2l && op <= bytecode.I2s:
		if err := v.convert(&f, op); err != nil {
			return err
		}
	case op == bytecode.Lcmp:
		if err := popLong(&f); err != nil {
			return err
		}
		if err := popLong(&f); err != nil {
			return err
		}
		if err := v.push(&f, tInt); err != nil {
			return err
		}
	case op == bytecode.Fcmpl || op == bytecode.Fcmpg:
		if err := pop(&f, tFloat); err != nil {
			return err
		}
		if err := pop(&f, tFloat); err != nil {
			return err
		}
		if err := v.push(&f, tInt); err != nil {
			return err
		}
	case op == bytecode.Dcmpl || op == bytecode.Dcmpg:
		if err := popDouble(&f); err != nil {
			return err
		}
		if err := popDouble(&f); err != nil {
			return err
		}
		if err := v.push(&f, tInt); err != nil {
			return err
		}
	case op >= bytecode.Ifeq && op <= bytecode.Ifle:
		if err := pop(&f, tInt); err != nil {
			return err
		}
		extraTargets = append(extraTargets, in.A)
	case op >= bytecode.IfIcmpeq && op <= bytecode.IfIcmple:
		if err := pop(&f, tInt); err != nil {
			return err
		}
		if err := pop(&f, tInt); err != nil {
			return err
		}
		extraTargets = append(extraTargets, in.A)
	case op == bytecode.IfAcmpeq || op == bytecode.IfAcmpne:
		if err := pop(&f, tRef); err != nil {
			return err
		}
		if err := pop(&f, tRef); err != nil {
			return err
		}
		extraTargets = append(extraTargets, in.A)
	case op == bytecode.Ifnull || op == bytecode.Ifnonnull:
		if err := pop(&f, tRef); err != nil {
			return err
		}
		extraTargets = append(extraTargets, in.A)
	case op == bytecode.Goto || op == bytecode.GotoW:
		terminal = true
		extraTargets = append(extraTargets, in.A)
	case op == bytecode.Jsr || op == bytecode.JsrW || op == bytecode.Ret:
		// Subroutines carry return addresses and split verification state;
		// the 1.2-era verifier handled them with substantial machinery.
		// Nothing in this repository emits them, so reject outright.
		return fmt.Errorf("jsr/ret subroutines unsupported by this verifier")
	case op == bytecode.Tableswitch || op == bytecode.Lookupswitch:
		if err := pop(&f, tInt); err != nil {
			return err
		}
		terminal = true
		extraTargets = append(extraTargets, in.Default)
		extraTargets = append(extraTargets, in.Targets...)
	case op == bytecode.Ireturn:
		// boolean/byte/char/short returns also use ireturn.
		switch {
		case v.ret.Dims == 0 && (v.ret.Base == 'I' || v.ret.Base == 'Z' ||
			v.ret.Base == 'B' || v.ret.Base == 'C' || v.ret.Base == 'S'):
			return pop(&f, tInt)
		default:
			return fmt.Errorf("ireturn from method returning %s", v.ret)
		}
	case op == bytecode.Lreturn:
		return v.checkReturn(&f, in, classfile.Type{Base: 'J'})
	case op == bytecode.Freturn:
		return v.checkReturn(&f, in, classfile.Type{Base: 'F'})
	case op == bytecode.Dreturn:
		return v.checkReturn(&f, in, classfile.Type{Base: 'D'})
	case op == bytecode.Areturn:
		if !v.ret.IsRef() {
			return fmt.Errorf("areturn from method returning %s", v.ret)
		}
		if err := pop(&f, tRef); err != nil {
			return err
		}
		return nil
	case op == bytecode.Return:
		if v.ret.Slots() != 0 {
			return fmt.Errorf("return from method returning %s", v.ret)
		}
		return nil
	case op == bytecode.Athrow:
		if err := pop(&f, tRef); err != nil {
			return err
		}
		return nil
	case op == bytecode.Getstatic:
		t, err := v.fieldType(in.A)
		if err != nil {
			return err
		}
		if err := v.push(&f, typeSlots(t)...); err != nil {
			return err
		}
	case op == bytecode.Putstatic:
		t, err := v.fieldType(in.A)
		if err != nil {
			return err
		}
		if err := v.popType(&f, t); err != nil {
			return err
		}
	case op == bytecode.Getfield:
		t, err := v.fieldType(in.A)
		if err != nil {
			return err
		}
		if err := pop(&f, tRef); err != nil {
			return err
		}
		if err := v.push(&f, typeSlots(t)...); err != nil {
			return err
		}
	case op == bytecode.Putfield:
		t, err := v.fieldType(in.A)
		if err != nil {
			return err
		}
		if err := v.popType(&f, t); err != nil {
			return err
		}
		if err := pop(&f, tRef); err != nil {
			return err
		}
	case op == bytecode.Invokevirtual || op == bytecode.Invokespecial ||
		op == bytecode.Invokestatic || op == bytecode.Invokeinterface:
		params, ret, err := v.methodType(in.A, op == bytecode.Invokeinterface)
		if err != nil {
			return err
		}
		for i := len(params) - 1; i >= 0; i-- {
			if err := v.popType(&f, params[i]); err != nil {
				return fmt.Errorf("argument %d: %w", i+1, err)
			}
		}
		if op != bytecode.Invokestatic {
			if err := pop(&f, tRef); err != nil {
				return fmt.Errorf("receiver: %w", err)
			}
		}
		if op == bytecode.Invokeinterface {
			slots := 1
			for _, p := range params {
				slots += len(typeSlots(p))
			}
			if in.B != slots {
				return fmt.Errorf("invokeinterface count %d, descriptor implies %d", in.B, slots)
			}
		}
		if err := v.push(&f, typeSlots(ret)...); err != nil {
			return err
		}
	case op == bytecode.New:
		if err := v.checkClassRef(in.A); err != nil {
			return err
		}
		if err := v.push(&f, tRef); err != nil {
			return err
		}
	case op == bytecode.Newarray:
		if in.A < 4 || in.A > 11 {
			return fmt.Errorf("newarray type %d invalid", in.A)
		}
		if err := pop(&f, tInt); err != nil {
			return err
		}
		if err := v.push(&f, tRef); err != nil {
			return err
		}
	case op == bytecode.Anewarray:
		if err := v.checkClassRef(in.A); err != nil {
			return err
		}
		if err := pop(&f, tInt); err != nil {
			return err
		}
		if err := v.push(&f, tRef); err != nil {
			return err
		}
	case op == bytecode.Arraylength:
		if err := pop(&f, tRef); err != nil {
			return err
		}
		if err := v.push(&f, tInt); err != nil {
			return err
		}
	case op == bytecode.Checkcast:
		if err := v.checkClassRef(in.A); err != nil {
			return err
		}
		if err := pop(&f, tRef); err != nil {
			return err
		}
		if err := v.push(&f, tRef); err != nil {
			return err
		}
	case op == bytecode.Instanceof:
		if err := v.checkClassRef(in.A); err != nil {
			return err
		}
		if err := pop(&f, tRef); err != nil {
			return err
		}
		if err := v.push(&f, tInt); err != nil {
			return err
		}
	case op == bytecode.Monitorenter || op == bytecode.Monitorexit:
		if err := pop(&f, tRef); err != nil {
			return err
		}
	case op == bytecode.Multianewarray:
		if err := v.checkClassRef(in.A); err != nil {
			return err
		}
		if in.B < 1 {
			return fmt.Errorf("multianewarray with %d dimensions", in.B)
		}
		for i := 0; i < in.B; i++ {
			if err := pop(&f, tInt); err != nil {
				return err
			}
		}
		if err := v.push(&f, tRef); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unsupported opcode %s", op)
	}
	return v.finish(in, &f, terminal, extraTargets, nil)
}

// finish flows the post-state to all successors.
func (v *mverifier) finish(in *bytecode.Instruction, f *frame, terminal bool, targets []int, err error) error {
	if err != nil {
		return err
	}
	for _, t := range targets {
		if err := v.flowTo(t, f); err != nil {
			return err
		}
	}
	if terminal {
		return nil
	}
	next := in.Offset + in.Size()
	if next >= len(v.code.Code) {
		return fmt.Errorf("control flow falls off the end of the code")
	}
	return v.flowTo(next, f)
}

func (v *mverifier) checkReturn(f *frame, in *bytecode.Instruction, want classfile.Type) error {
	if v.ret.Dims != 0 || v.ret.Base != want.Base {
		return fmt.Errorf("%s from method returning %s", in.Op, v.ret)
	}
	return v.popType(f, want)
}

func (v *mverifier) checkClassRef(idx int) error {
	if idx <= 0 || idx >= len(v.cf.Pool) || v.cf.Pool[idx].Kind != classfile.KindClass {
		return fmt.Errorf("index %d is not a Class", idx)
	}
	return nil
}

func (v *mverifier) loadPush(f *frame, in *bytecode.Instruction, base bytecode.Op, t vtype) error {
	slot := in.A
	if in.Op >= base && in.Op <= base+3 {
		slot = int(in.Op - base)
	}
	if err := v.load(f, slot, t); err != nil {
		return err
	}
	if t == tLong || t == tDouble {
		return v.push(f, t, t+1)
	}
	return v.push(f, t)
}

func (v *mverifier) popStore(f *frame, in *bytecode.Instruction, base bytecode.Op, t vtype) error {
	slot := in.A
	if in.Op >= base && in.Op <= base+3 {
		slot = int(in.Op - base)
	}
	if t == tLong {
		if err := popLong(f); err != nil {
			return err
		}
		return v.store(f, slot, tLong, tLong2)
	}
	if t == tDouble {
		if err := popDouble(f); err != nil {
			return err
		}
		return v.store(f, slot, tDouble, tDouble2)
	}
	if err := pop(f, t); err != nil {
		return err
	}
	return v.store(f, slot, t)
}

func (v *mverifier) arrayLoad(f *frame, elem vtype) error {
	if err := pop(f, tInt); err != nil {
		return err
	}
	if err := pop(f, tRef); err != nil {
		return err
	}
	return v.push(f, elem)
}

func (v *mverifier) arrayLoadWide(f *frame, elem vtype) error {
	if err := pop(f, tInt); err != nil {
		return err
	}
	if err := pop(f, tRef); err != nil {
		return err
	}
	return v.push(f, elem, elem+1)
}

func (v *mverifier) arrayStore(f *frame, elem vtype) error {
	if err := pop(f, elem); err != nil {
		return err
	}
	if err := pop(f, tInt); err != nil {
		return err
	}
	return pop(f, tRef)
}

// convert handles the 15 primitive conversion opcodes.
func (v *mverifier) convert(f *frame, op bytecode.Op) error {
	type conv struct {
		from, to vtype
	}
	table := map[bytecode.Op]conv{
		bytecode.I2l: {tInt, tLong}, bytecode.I2f: {tInt, tFloat}, bytecode.I2d: {tInt, tDouble},
		bytecode.L2i: {tLong, tInt}, bytecode.L2f: {tLong, tFloat}, bytecode.L2d: {tLong, tDouble},
		bytecode.F2i: {tFloat, tInt}, bytecode.F2l: {tFloat, tLong}, bytecode.F2d: {tFloat, tDouble},
		bytecode.D2i: {tDouble, tInt}, bytecode.D2l: {tDouble, tLong}, bytecode.D2f: {tDouble, tFloat},
		bytecode.I2b: {tInt, tInt}, bytecode.I2c: {tInt, tInt}, bytecode.I2s: {tInt, tInt},
	}
	c, ok := table[op]
	if !ok {
		return fmt.Errorf("unknown conversion %s", op)
	}
	switch c.from {
	case tLong:
		if err := popLong(f); err != nil {
			return err
		}
	case tDouble:
		if err := popDouble(f); err != nil {
			return err
		}
	default:
		if err := pop(f, c.from); err != nil {
			return err
		}
	}
	if c.to == tLong || c.to == tDouble {
		return v.push(f, c.to, c.to+1)
	}
	return v.push(f, c.to)
}

// dupSwap implements the stack-shuffle family with category checks.
func (v *mverifier) dupSwap(f *frame, op bytecode.Op) error {
	n := len(f.stack)
	need := map[bytecode.Op]int{
		bytecode.DupX1: 2, bytecode.DupX2: 3, bytecode.Dup2: 2,
		bytecode.Dup2X1: 3, bytecode.Dup2X2: 4, bytecode.Swap: 2,
	}[op]
	if n < need {
		return fmt.Errorf("%s with stack depth %d", op, n)
	}
	cat1 := func(t vtype) bool { return t == tInt || t == tFloat || t == tRef }
	validUnit := func(a, b vtype) bool {
		return (a == tLong && b == tLong2) || (a == tDouble && b == tDouble2) ||
			(cat1(a) && cat1(b))
	}
	s := f.stack
	switch op {
	case bytecode.Swap:
		if !cat1(s[n-1]) || !cat1(s[n-2]) {
			return fmt.Errorf("swap of category-2 values")
		}
		s[n-1], s[n-2] = s[n-2], s[n-1]
		return nil
	case bytecode.DupX1:
		if !cat1(s[n-1]) || !cat1(s[n-2]) {
			return fmt.Errorf("dup_x1 over category-2 values")
		}
		top := s[n-1]
		if err := v.push(f, tTop); err != nil {
			return err
		}
		s = f.stack
		copy(s[n-1:], s[n-2:n])
		s[n-2] = top
		return nil
	case bytecode.DupX2:
		if !cat1(s[n-1]) {
			return fmt.Errorf("dup_x2 of a category-2 value")
		}
		if s[n-2] == tLong || s[n-2] == tDouble {
			return fmt.Errorf("dup_x2 splitting a category-2 value")
		}
		top := s[n-1]
		if err := v.push(f, tTop); err != nil {
			return err
		}
		s = f.stack
		copy(s[n-2:], s[n-3:n])
		s[n-3] = top
		return nil
	case bytecode.Dup2:
		if !validUnit(s[n-2], s[n-1]) {
			return fmt.Errorf("dup2 splitting a category-2 value")
		}
		return v.push(f, s[n-2], s[n-1])
	case bytecode.Dup2X1:
		if !validUnit(s[n-2], s[n-1]) || !cat1(s[n-3]) {
			return fmt.Errorf("dup2_x1 over invalid units")
		}
		a, b := s[n-2], s[n-1]
		if err := v.push(f, tTop, tTop); err != nil {
			return err
		}
		s = f.stack
		copy(s[n-1:], s[n-3:n])
		s[n-3], s[n-2] = a, b
		return nil
	case bytecode.Dup2X2:
		if !validUnit(s[n-2], s[n-1]) || !validUnit(s[n-4], s[n-3]) {
			return fmt.Errorf("dup2_x2 over invalid units")
		}
		a, b := s[n-2], s[n-1]
		if err := v.push(f, tTop, tTop); err != nil {
			return err
		}
		s = f.stack
		copy(s[n-2:], s[n-4:n])
		s[n-4], s[n-3] = a, b
		return nil
	}
	return fmt.Errorf("unhandled shuffle %s", op)
}
