// Package verifier implements a dataflow bytecode verifier in the style of
// the pre-Java-6 type-inference verifier: every method body is abstractly
// interpreted over a small type lattice with merge-over-all-paths until a
// fixpoint, rejecting stack underflow and overflow, operand type
// mismatches, inconsistent frame merges, and control flow that falls off
// the end of the code.
//
// Reference types are verified typelessly (every object or array value is
// `ref`): subtype checks would require the full class hierarchy, which an
// archive does not carry. The verifier is used by the test suite to
// independently validate the corpus generator, the MiniJava compiler, and
// unpacked archives.
package verifier

import (
	"errors"
	"fmt"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
	"classpack/internal/par"
)

// vtype is one verification type (a slot in a frame).
type vtype uint8

const (
	tTop vtype = iota // undefined / conflicting; unusable
	tInt              // int, boolean, byte, char, short
	tFloat
	tLong  // first slot of a long
	tLong2 // second slot of a long
	tDouble
	tDouble2
	tRef // any object or array reference (including null)
)

func (t vtype) String() string {
	return [...]string{"top", "int", "float", "long", "long2", "double", "double2", "ref"}[t]
}

// frame is the abstract machine state at one point.
type frame struct {
	locals []vtype
	stack  []vtype
}

func (f *frame) clone() frame {
	return frame{
		locals: append([]vtype(nil), f.locals...),
		stack:  append([]vtype(nil), f.stack...),
	}
}

// merge folds other into f, reporting whether f changed. Conflicting
// locals become top (unusable); conflicting or depth-mismatched stacks are
// errors.
func (f *frame) merge(other *frame) (changed bool, err error) {
	if len(f.stack) != len(other.stack) {
		return false, fmt.Errorf("stack depth %d vs %d at merge", len(f.stack), len(other.stack))
	}
	for i := range f.locals {
		if f.locals[i] != other.locals[i] && f.locals[i] != tTop {
			f.locals[i] = tTop
			changed = true
		}
	}
	for i := range f.stack {
		if f.stack[i] != other.stack[i] {
			return false, fmt.Errorf("stack slot %d: %v vs %v at merge", i, f.stack[i], other.stack[i])
		}
	}
	return changed, nil
}

// typeSlots maps a descriptor type to its frame slots.
func typeSlots(t classfile.Type) []vtype {
	if t.Dims > 0 {
		return []vtype{tRef}
	}
	switch t.Base {
	case 'B', 'C', 'S', 'Z', 'I':
		return []vtype{tInt}
	case 'F':
		return []vtype{tFloat}
	case 'J':
		return []vtype{tLong, tLong2}
	case 'D':
		return []vtype{tDouble, tDouble2}
	case 'L':
		return []vtype{tRef}
	case 'V':
		return nil
	default:
		return []vtype{tTop}
	}
}

// MethodError locates a verification failure: the class and method it
// occurred in, the bytecode offset and opcode of the failing
// instruction (PC -1 and an empty Op for structural failures that are
// not tied to one instruction), and the underlying cause.
type MethodError struct {
	Class  string
	Method string
	Desc   string
	PC     int
	Op     string
	Err    error
}

func (e *MethodError) Error() string {
	if e.PC >= 0 {
		return fmt.Sprintf("verifier: %s.%s%s: at pc %d (%s): %v",
			e.Class, e.Method, e.Desc, e.PC, e.Op, e.Err)
	}
	return fmt.Sprintf("verifier: %s.%s%s: %v", e.Class, e.Method, e.Desc, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *MethodError) Unwrap() error { return e.Err }

// pcError carries the failing instruction's position out of the
// interpreter loop so Method can lift it into the MethodError.
type pcError struct {
	pc  int
	op  string
	err error
}

func (e *pcError) Error() string { return fmt.Sprintf("at pc %d (%s): %v", e.pc, e.op, e.err) }
func (e *pcError) Unwrap() error { return e.err }

// Class verifies every method body in cf, stopping at the first
// failure. The returned error is a *MethodError.
func Class(cf *classfile.ClassFile) error {
	for mi := range cf.Methods {
		if err := Method(cf, &cf.Methods[mi]); err != nil {
			return err
		}
	}
	return nil
}

// Verdict is one method's verification outcome within a class.
type Verdict struct {
	Method string
	Desc   string
	Err    *MethodError // nil when the method verified cleanly
}

// OK reports whether the method verified cleanly.
func (v Verdict) OK() bool { return v.Err == nil }

// ClassVerdicts verifies every method body in cf independently,
// returning one verdict per method instead of stopping at the first
// failure.
func ClassVerdicts(cf *classfile.ClassFile) []Verdict {
	out := make([]Verdict, len(cf.Methods))
	for mi := range cf.Methods {
		m := &cf.Methods[mi]
		out[mi] = Verdict{Method: cf.MemberName(m), Desc: cf.MemberDesc(m)}
		if err := Method(cf, m); err != nil {
			var me *MethodError
			if !errors.As(err, &me) {
				me = &MethodError{Class: cf.ThisClassName(), Method: out[mi].Method,
					Desc: out[mi].Desc, PC: -1, Err: err}
			}
			out[mi].Err = me
		}
	}
	return out
}

// Classes verifies a whole collection on up to concurrency workers
// (<= 0 meaning all cores). Verification only reads each classfile, and
// each file is checked independently, so the outcome is identical for
// every worker count; the error returned is the one a serial sweep
// would report first.
func Classes(cfs []*classfile.ClassFile, concurrency int) error {
	return par.Do(concurrency, len(cfs), func(i int) error {
		return Class(cfs[i])
	})
}

// Method verifies one method body (no-op for abstract/native methods).
// Failures are reported as *MethodError values carrying the class,
// method, and — for interpreter failures — the failing pc and opcode.
func Method(cf *classfile.ClassFile, m *classfile.Member) error {
	err := methodBody(cf, m)
	if err == nil {
		return nil
	}
	me := &MethodError{
		Class:  cf.ThisClassName(),
		Method: cf.MemberName(m),
		Desc:   cf.MemberDesc(m),
		PC:     -1,
		Err:    err,
	}
	var pe *pcError
	if errors.As(err, &pe) {
		me.PC, me.Op, me.Err = pe.pc, pe.op, pe.err
	}
	return me
}

func methodBody(cf *classfile.ClassFile, m *classfile.Member) error {
	code := classfile.CodeOf(m)
	if code == nil {
		if m.AccessFlags&(classfile.AccAbstract|classfile.AccNative) == 0 {
			return fmt.Errorf("non-abstract method has no Code")
		}
		return nil
	}
	params, ret, err := classfile.ParseMethodDescriptor(cf.MemberDesc(m))
	if err != nil {
		return err
	}
	v := &mverifier{cf: cf, code: code, ret: ret}
	return v.run(params, m.AccessFlags&classfile.AccStatic == 0)
}

type mverifier struct {
	cf   *classfile.ClassFile
	code *classfile.CodeAttr
	ret  classfile.Type

	insns    []bytecode.Instruction
	byOffset map[int]int
	states   map[int]*frame // committed entry frame per reachable offset
	work     []int          // offsets to (re)process
}

func (v *mverifier) run(params []classfile.Type, hasThis bool) error {
	var err error
	v.insns, err = bytecode.Decode(v.code.Code)
	if err != nil {
		return err
	}
	if len(v.insns) == 0 {
		return fmt.Errorf("empty code array")
	}
	v.byOffset = make(map[int]int, len(v.insns))
	for i := range v.insns {
		v.byOffset[v.insns[i].Offset] = i
	}
	entry := frame{locals: make([]vtype, v.code.MaxLocals)}
	for i := range entry.locals {
		entry.locals[i] = tTop
	}
	slot := 0
	if hasThis {
		if slot >= len(entry.locals) {
			return fmt.Errorf("max_locals %d too small for this", v.code.MaxLocals)
		}
		entry.locals[slot] = tRef
		slot++
	}
	for _, p := range params {
		for _, s := range typeSlots(p) {
			if slot >= len(entry.locals) {
				return fmt.Errorf("max_locals %d too small for parameters", v.code.MaxLocals)
			}
			entry.locals[slot] = s
			slot++
		}
	}
	v.states = map[int]*frame{}
	if err := v.flowTo(0, &entry); err != nil {
		return err
	}
	for len(v.work) > 0 {
		off := v.work[len(v.work)-1]
		v.work = v.work[:len(v.work)-1]
		if err := v.interpret(off); err != nil {
			return &pcError{pc: off, op: v.insns[v.byOffset[off]].Op.String(), err: err}
		}
	}
	return nil
}

// flowTo merges a frame into a target offset, scheduling it when changed.
func (v *mverifier) flowTo(off int, f *frame) error {
	idx, ok := v.byOffset[off]
	if !ok {
		return fmt.Errorf("branch to %d, not an instruction boundary", off)
	}
	_ = idx
	if len(f.stack) > int(v.code.MaxStack) {
		return fmt.Errorf("stack depth %d exceeds max_stack %d flowing to %d",
			len(f.stack), v.code.MaxStack, off)
	}
	existing, ok := v.states[off]
	if !ok {
		c := f.clone()
		v.states[off] = &c
		v.work = append(v.work, off)
		return nil
	}
	changed, err := existing.merge(f)
	if err != nil {
		return fmt.Errorf("merging into %d: %w", off, err)
	}
	if changed {
		v.work = append(v.work, off)
	}
	return nil
}

// handlersCovering flows the current locals into every handler protecting
// the instruction at off.
func (v *mverifier) handlersCovering(off int, f *frame) error {
	for _, h := range v.code.Handlers {
		if off < int(h.StartPC) || off >= int(h.EndPC) {
			continue
		}
		hf := frame{locals: append([]vtype(nil), f.locals...), stack: []vtype{tRef}}
		if err := v.flowTo(int(h.HandlerPC), &hf); err != nil {
			return err
		}
	}
	return nil
}
