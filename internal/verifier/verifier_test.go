package verifier

import (
	"testing"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
	"classpack/internal/core"
	"classpack/internal/minijava"
	"classpack/internal/strip"
	"classpack/internal/synth"
)

// TestMiniJavaOutputVerifies runs the dataflow verifier over compiler
// output for a program exercising every MiniJava construct.
func TestMiniJavaOutputVerifies(t *testing.T) {
	cfs, err := minijava.Compile(`
class Main { public static void main(String[] a) {
    int[] xs;
    int i;
    xs = new int[8];
    i = 0;
    while (i < xs.length) { xs[i] = i * i; i = i + 1; }
    if (xs[3] == 9 && !(xs[2] != 4)) System.out.println("ok");
    else System.out.println(new Alg().gcd(84, 36));
} }
class Alg {
    int calls;
    public int gcd(int a, int b) {
        int r;
        calls = calls + 1;
        if (b == 0) r = a; else r = this.gcd(b, a % b);
        return r;
    }
}
`, minijava.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cf := range cfs {
		if err := Class(cf); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorporaVerify runs the verifier over generated corpora — the
// strongest check that the synthesizer emits type-correct bytecode.
func TestCorporaVerify(t *testing.T) {
	for _, name := range []string{"Hanoi", "222_mpegaudio", "213_javac", "jmark20"} {
		t.Run(name, func(t *testing.T) {
			p, err := synth.ProfileByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfs, err := synth.GenerateStripped(p, 0.03)
			if err != nil {
				t.Fatal(err)
			}
			for _, cf := range cfs {
				if err := Class(cf); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestClassesMatchesSerial checks the parallel whole-archive sweep:
// Classes agrees with a serial Class loop on both clean and broken
// corpora, at several worker counts.
func TestClassesMatchesSerial(t *testing.T) {
	p, err := synth.ProfileByName("Hanoi")
	if err != nil {
		t.Fatal(err)
	}
	cfs, err := synth.GenerateStripped(p, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{1, 2, 0} {
		if err := Classes(cfs, j); err != nil {
			t.Fatalf("Classes(j=%d) rejected a clean corpus: %v", j, err)
		}
	}
	// Break one method body; every worker count must report it, and the
	// parallel sweep must name the same failure the serial one does.
	var broken *classfile.ClassFile
	for _, cf := range cfs {
		for mi := range cf.Methods {
			if code := classfile.CodeOf(&cf.Methods[mi]); code != nil && len(code.Code) > 0 {
				code.Code[0] = byte(bytecode.Pop)
				broken = cf
				break
			}
		}
		if broken != nil {
			break
		}
	}
	if broken == nil {
		t.Fatal("no method body to corrupt")
	}
	serial := Classes(cfs, 1)
	if serial == nil {
		t.Fatal("serial sweep accepted corrupted bytecode")
	}
	for _, j := range []int{2, 0} {
		err := Classes(cfs, j)
		if err == nil {
			t.Fatalf("Classes(j=%d) accepted corrupted bytecode", j)
		}
		if err.Error() != serial.Error() {
			t.Fatalf("Classes(j=%d) = %q, serial = %q", j, err, serial)
		}
	}
}

// TestUnpackedArchiveVerifies closes the loop: classes that went through
// pack/unpack still pass dataflow verification.
func TestUnpackedArchiveVerifies(t *testing.T) {
	p, err := synth.ProfileByName("202_jess")
	if err != nil {
		t.Fatal(err)
	}
	cfs, err := synth.GenerateStripped(p, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := core.Pack(cfs, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	for _, cf := range back {
		if err := Class(cf); err != nil {
			t.Fatal(err)
		}
	}
}

// buildMethod assembles a one-method class for negative tests.
func buildMethod(t *testing.T, desc string, maxStack, maxLocals int,
	emit func(b *classfile.Builder, a *bytecode.Assembler)) *classfile.ClassFile {
	t.Helper()
	b := classfile.NewBuilder("T", "java/lang/Object", classfile.AccPublic)
	m := b.AddMethod(classfile.AccPublic|classfile.AccStatic, "t", desc)
	a := bytecode.NewAssembler()
	emit(b, a)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	b.AttachCode(m, &classfile.CodeAttr{
		MaxStack: uint16(maxStack), MaxLocals: uint16(maxLocals), Code: code,
	})
	cf, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return cf
}

func TestRejectsBadBytecode(t *testing.T) {
	cases := map[string]func(b *classfile.Builder, a *bytecode.Assembler){
		"stack underflow": func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Op(bytecode.Iadd)
			a.Op(bytecode.Return)
		},
		"type mismatch add": func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Op(bytecode.Iconst1)
			a.Op(bytecode.Fconst1)
			a.Op(bytecode.Iadd)
			a.Op(bytecode.Return)
		},
		"wrong return": func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Op(bytecode.Iconst1)
			a.Op(bytecode.Ireturn) // method returns void
		},
		"falls off end": func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Op(bytecode.Iconst1)
			a.Op(bytecode.Pop)
		},
		"uninitialized local": func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Local(bytecode.Iload, 1)
			a.Op(bytecode.Pop)
			a.Op(bytecode.Return)
		},
		"split long local": func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Op(bytecode.Lconst0)
			a.Local(bytecode.Lstore, 1)
			a.Op(bytecode.Iconst1)
			a.Local(bytecode.Istore, 2) // clobbers the long's upper half
			a.Local(bytecode.Lload, 1)
			a.Op(bytecode.Pop2)
			a.Op(bytecode.Return)
		},
		"inconsistent merge": func(b *classfile.Builder, a *bytecode.Assembler) {
			els := a.NewLabel()
			end := a.NewLabel()
			a.Op(bytecode.Iconst1)
			a.Branch(bytecode.Ifeq, els)
			a.Op(bytecode.Iconst2) // then: int on stack
			a.Branch(bytecode.Goto, end)
			a.Bind(els)
			a.Op(bytecode.Fconst1) // else: float on stack
			a.Bind(end)
			a.Op(bytecode.Pop)
			a.Op(bytecode.Return)
		},
		"stack depth merge": func(b *classfile.Builder, a *bytecode.Assembler) {
			els := a.NewLabel()
			end := a.NewLabel()
			a.Op(bytecode.Iconst1)
			a.Branch(bytecode.Ifeq, els)
			a.Op(bytecode.Iconst2)
			a.Op(bytecode.Iconst3) // depth 2
			a.Branch(bytecode.Goto, end)
			a.Bind(els)
			a.Op(bytecode.Iconst4) // depth 1
			a.Bind(end)
			a.Op(bytecode.Pop)
			a.Op(bytecode.Return)
		},
		"overflow max_stack": func(b *classfile.Builder, a *bytecode.Assembler) {
			for i := 0; i < 5; i++ {
				a.Op(bytecode.Iconst1) // max_stack is 2
			}
			a.Op(bytecode.Return)
		},
		"dup of long": func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Op(bytecode.Lconst0)
			a.Op(bytecode.Dup)
			a.Op(bytecode.Return)
		},
		"getfield on int": func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Op(bytecode.Iconst1)
			a.CP(bytecode.Getfield, b.Fieldref("T", "x", "I"))
			a.Op(bytecode.Return)
		},
		"branch into operand": func(b *classfile.Builder, a *bytecode.Assembler) {
			// Assembled via raw code below; placeholder here.
			a.Op(bytecode.Return)
		},
	}
	for name, emit := range cases {
		t.Run(name, func(t *testing.T) {
			maxStack := 2
			if name == "stack depth merge" {
				maxStack = 3
			}
			cf := buildMethod(t, "()V", maxStack, 4, emit)
			if name == "branch into operand" {
				// Overwrite with hand-crafted code: goto lands mid-sipush.
				code := classfile.CodeOf(&cf.Methods[0])
				code.Code = []byte{byte(bytecode.Goto), 0, 4, byte(bytecode.Sipush), 0, 0xb1, byte(bytecode.Return)}
			}
			if err := Class(cf); err == nil {
				t.Fatalf("verifier accepted %s", name)
			}
		})
	}
}

func TestAcceptsValidConstructs(t *testing.T) {
	cases := map[string]struct {
		desc     string
		maxStack int
		emit     func(b *classfile.Builder, a *bytecode.Assembler)
	}{
		"long arithmetic": {"(JJ)J", 4, func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Local(bytecode.Lload, 0)
			a.Local(bytecode.Lload, 2)
			a.Op(bytecode.Ladd)
			a.Op(bytecode.Lreturn)
		}},
		"double locals": {"(D)D", 4, func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Local(bytecode.Dload, 0)
			a.Op(bytecode.Dconst1)
			a.Op(bytecode.Dmul)
			a.Local(bytecode.Dstore, 2)
			a.Local(bytecode.Dload, 2)
			a.Op(bytecode.Dreturn)
		}},
		"loop with merge": {"(I)I", 2, func(b *classfile.Builder, a *bytecode.Assembler) {
			loop, end := a.NewLabel(), a.NewLabel()
			a.Op(bytecode.Iconst0)
			a.Local(bytecode.Istore, 1)
			a.Bind(loop)
			a.Local(bytecode.Iload, 1)
			a.Local(bytecode.Iload, 0)
			a.Branch(bytecode.IfIcmpge, end)
			a.Iinc(1, 1)
			a.Branch(bytecode.Goto, loop)
			a.Bind(end)
			a.Local(bytecode.Iload, 1)
			a.Op(bytecode.Ireturn)
		}},
		"dup2 pair": {"(J)J", 6, func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Local(bytecode.Lload, 0)
			a.Op(bytecode.Dup2)
			a.Op(bytecode.Ladd)
			a.Op(bytecode.Lreturn)
		}},
		"switch": {"(I)I", 2, func(b *classfile.Builder, a *bytecode.Assembler) {
			c0, c1, def := a.NewLabel(), a.NewLabel(), a.NewLabel()
			a.Local(bytecode.Iload, 0)
			a.TableSwitch(0, []bytecode.Label{c0, c1}, def)
			a.Bind(c0)
			a.Op(bytecode.Iconst0)
			a.Op(bytecode.Ireturn)
			a.Bind(c1)
			a.Op(bytecode.Iconst1)
			a.Op(bytecode.Ireturn)
			a.Bind(def)
			a.Op(bytecode.IconstM1)
			a.Op(bytecode.Ireturn)
		}},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			cf := buildMethod(t, c.desc, c.maxStack, 6, c.emit)
			if err := Class(cf); err != nil {
				t.Fatalf("verifier rejected %s: %v", name, err)
			}
		})
	}
}

// TestHandlersVerify checks exception-handler frames: handler entry sees
// the thrown exception and the merged locals of the protected range.
func TestHandlersVerify(t *testing.T) {
	b := classfile.NewBuilder("T", "java/lang/Object", classfile.AccPublic)
	m := b.AddMethod(classfile.AccPublic|classfile.AccStatic, "t", "()I")
	a := bytecode.NewAssembler()
	start, end, handler := a.NewLabel(), a.NewLabel(), a.NewLabel()
	a.Bind(start)
	a.Op(bytecode.Iconst1)
	a.Local(bytecode.Istore, 0)
	a.Bind(end)
	a.Local(bytecode.Iload, 0)
	a.Op(bytecode.Ireturn)
	a.Bind(handler)
	a.Op(bytecode.Pop) // the exception
	a.Op(bytecode.Iconst2)
	a.Op(bytecode.Ireturn)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	attr := &classfile.CodeAttr{MaxStack: 1, MaxLocals: 1, Code: code}
	attr.Handlers = []classfile.ExceptionHandler{{
		StartPC: uint16(a.OffsetOf(start)), EndPC: uint16(a.OffsetOf(end)),
		HandlerPC: uint16(a.OffsetOf(handler)), CatchType: b.Class("java/lang/Exception"),
	}}
	b.AttachCode(m, attr)
	cf, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := Class(cf); err != nil {
		t.Fatalf("handler method rejected: %v", err)
	}
}

// TestStrippedCorporaStillVerifyAfterStrip guards the renumbering: strip
// rewrites all constant-pool operands, which must keep code verifiable.
func TestStrippedCorporaStillVerifyAfterStrip(t *testing.T) {
	p, err := synth.ProfileByName("icebrowserbean")
	if err != nil {
		t.Fatal(err)
	}
	cfs, err := synth.Generate(p, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if err := strip.ApplyAll(cfs, strip.Options{}); err != nil {
		t.Fatal(err)
	}
	for _, cf := range cfs {
		if err := Class(cf); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKitchenSinkMethod verifies a single method exercising the opcode
// arms the generators rarely emit: monitors, casts, multianewarray, every
// dup/swap form, float and double comparisons, conversions, and athrow.
func TestKitchenSinkMethod(t *testing.T) {
	b := classfile.NewBuilder("K", "java/lang/Object", classfile.AccPublic)
	obj := b.Class("java/lang/Object")
	arr2 := b.Class("[[I")
	exc := b.Class("java/lang/Exception")
	_ = exc
	m := b.AddMethod(classfile.AccPublic|classfile.AccStatic, "k", "(Ljava/lang/Object;FD)V")
	a := bytecode.NewAssembler()

	// checkcast / instanceof / monitors / ifnull.
	skip := a.NewLabel()
	a.Local(bytecode.Aload, 0)
	a.CP(bytecode.Checkcast, obj)
	a.Op(bytecode.Dup)
	a.Op(bytecode.Monitorenter)
	a.Local(bytecode.Aload, 0)
	a.Op(bytecode.Monitorexit)
	a.CP(bytecode.Instanceof, obj)
	a.Op(bytecode.Pop)
	a.Local(bytecode.Aload, 0)
	a.Branch(bytecode.Ifnull, skip)
	a.Bind(skip)

	// multianewarray and aaload.
	a.Op(bytecode.Iconst2)
	a.Op(bytecode.Iconst3)
	a.MultiANewArray(arr2, 2)
	a.Op(bytecode.Iconst0)
	a.Op(bytecode.Aaload)
	a.Op(bytecode.Pop)

	// Float and double compares, negation, remainder, conversions.
	a.Local(bytecode.Fload, 1)
	a.Op(bytecode.Fneg)
	a.Op(bytecode.Fconst2)
	a.Op(bytecode.Frem)
	a.Local(bytecode.Fload, 1)
	a.Op(bytecode.Fcmpg)
	a.Op(bytecode.Pop)
	a.Local(bytecode.Dload, 2)
	a.Op(bytecode.Dneg)
	a.Local(bytecode.Dload, 2)
	a.Op(bytecode.Dcmpl)
	a.Op(bytecode.Pop)
	a.Local(bytecode.Fload, 1)
	a.Op(bytecode.F2l)
	a.Op(bytecode.L2d)
	a.Op(bytecode.D2f)
	a.Op(bytecode.F2i)
	a.Op(bytecode.I2b)
	a.Op(bytecode.I2c)
	a.Op(bytecode.I2s)
	a.Op(bytecode.Ineg)
	a.Op(bytecode.Pop)

	// Shifts, lcmp, iushr/lushr.
	a.Op(bytecode.Lconst1)
	a.Op(bytecode.Iconst3)
	a.Op(bytecode.Lshl)
	a.Op(bytecode.Lconst0)
	a.Op(bytecode.Lcmp)
	a.Op(bytecode.Iconst1)
	a.Op(bytecode.Iushr)
	a.Op(bytecode.Pop)
	a.Op(bytecode.Lconst1)
	a.Op(bytecode.Iconst2)
	a.Op(bytecode.Lushr)
	a.Op(bytecode.Pop2)

	// Dup / swap family on category-1 values.
	a.Op(bytecode.Iconst1)
	a.Op(bytecode.Iconst2)
	a.Op(bytecode.Swap)
	a.Op(bytecode.DupX1)
	a.Op(bytecode.Pop)
	a.Op(bytecode.Iconst3)
	a.Op(bytecode.DupX2)
	a.Op(bytecode.Pop)
	a.Op(bytecode.Pop)
	a.Op(bytecode.Pop)
	a.Op(bytecode.Pop)
	a.Op(bytecode.Iconst4)
	a.Op(bytecode.Iconst5)
	a.Op(bytecode.Dup2)
	a.Op(bytecode.Pop2)
	a.Op(bytecode.Iconst0)
	a.Op(bytecode.Dup2X1)
	a.Op(bytecode.Pop)
	a.Op(bytecode.Pop2)
	a.Op(bytecode.Pop2)
	a.Op(bytecode.Lconst0)
	a.Op(bytecode.Lconst1)
	a.Op(bytecode.Dup2X2)
	a.Op(bytecode.Pop2)
	a.Op(bytecode.Pop2)
	a.Op(bytecode.Pop2)

	// Long/double array element ops.
	a.Op(bytecode.Iconst2)
	a.NewArray(11) // long[]
	a.Op(bytecode.Dup)
	a.Op(bytecode.Iconst0)
	a.Op(bytecode.Lconst1)
	a.Op(bytecode.Lastore)
	a.Op(bytecode.Iconst0)
	a.Op(bytecode.Laload)
	a.Op(bytecode.Pop2)
	a.Op(bytecode.Iconst2)
	a.NewArray(7) // double[]
	a.Op(bytecode.Dup)
	a.Op(bytecode.Iconst0)
	a.Op(bytecode.Dconst1)
	a.Op(bytecode.Dastore)
	a.Op(bytecode.Iconst1)
	a.Op(bytecode.Daload)
	a.Op(bytecode.Pop2)
	a.Op(bytecode.Iconst1)
	a.NewArray(6) // float[]
	a.Op(bytecode.Iconst0)
	a.Op(bytecode.Faload)
	a.Op(bytecode.Pop)

	// athrow terminates this path; unreachable code after is fine because
	// nothing flows into it.
	a.CP(bytecode.New, exc)
	a.Op(bytecode.Athrow)

	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	b.AttachCode(m, &classfile.CodeAttr{MaxStack: 10, MaxLocals: 4, Code: code})
	cf, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := Class(cf); err != nil {
		t.Fatalf("kitchen sink rejected: %v", err)
	}
}

func TestMoreRejections(t *testing.T) {
	cases := map[string]func(b *classfile.Builder, a *bytecode.Assembler){
		"swap long": func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Op(bytecode.Lconst0)
			a.Op(bytecode.Swap)
			a.Op(bytecode.Return)
		},
		"pop2 split pair": func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Op(bytecode.Iconst1)
			a.Op(bytecode.Lconst0)
			a.Op(bytecode.Pop) // pops long2: invalid
			a.Op(bytecode.Return)
		},
		"monitorenter int": func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Op(bytecode.Iconst1)
			a.Op(bytecode.Monitorenter)
			a.Op(bytecode.Return)
		},
		"athrow int": func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Op(bytecode.Iconst1)
			a.Op(bytecode.Athrow)
		},
		"newarray bad type": func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Op(bytecode.Iconst1)
			a.NewArray(3)
			a.Op(bytecode.Pop)
			a.Op(bytecode.Return)
		},
		"lshl wrong order": func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Op(bytecode.Iconst1)
			a.Op(bytecode.Lconst1)
			a.Op(bytecode.Lshl) // shift amount must be on top
			a.Op(bytecode.Pop2)
			a.Op(bytecode.Return)
		},
		"iinc on float": func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Op(bytecode.Fconst0)
			a.Local(bytecode.Fstore, 1)
			a.Iinc(1, 1)
			a.Op(bytecode.Return)
		},
		"invokestatic missing args": func(b *classfile.Builder, a *bytecode.Assembler) {
			a.CP(bytecode.Invokestatic, b.Methodref("java/lang/Math", "max", "(II)I"))
			a.Op(bytecode.Pop)
			a.Op(bytecode.Return)
		},
		"receiver wrong type": func(b *classfile.Builder, a *bytecode.Assembler) {
			a.Op(bytecode.Iconst1)
			a.CP(bytecode.Invokevirtual, b.Methodref("java/lang/Object", "hashCode", "()I"))
			a.Op(bytecode.Pop)
			a.Op(bytecode.Return)
		},
	}
	for name, emit := range cases {
		t.Run(name, func(t *testing.T) {
			cf := buildMethod(t, "()V", 4, 4, emit)
			if err := Class(cf); err == nil {
				t.Fatalf("verifier accepted %s", name)
			}
		})
	}
}
