// Package bytecode decodes and encodes JVM method bytecode. It covers the
// full JDK 1.2-era instruction set including the wide prefix and both
// switch instructions, and provides an assembler with label resolution for
// code generators.
package bytecode

// Op is a JVM opcode.
type Op byte

// The complete JVM 1.2 instruction set.
const (
	Nop             Op = 0x00
	AconstNull      Op = 0x01
	IconstM1        Op = 0x02
	Iconst0         Op = 0x03
	Iconst1         Op = 0x04
	Iconst2         Op = 0x05
	Iconst3         Op = 0x06
	Iconst4         Op = 0x07
	Iconst5         Op = 0x08
	Lconst0         Op = 0x09
	Lconst1         Op = 0x0a
	Fconst0         Op = 0x0b
	Fconst1         Op = 0x0c
	Fconst2         Op = 0x0d
	Dconst0         Op = 0x0e
	Dconst1         Op = 0x0f
	Bipush          Op = 0x10
	Sipush          Op = 0x11
	Ldc             Op = 0x12
	LdcW            Op = 0x13
	Ldc2W           Op = 0x14
	Iload           Op = 0x15
	Lload           Op = 0x16
	Fload           Op = 0x17
	Dload           Op = 0x18
	Aload           Op = 0x19
	Iload0          Op = 0x1a
	Iload1          Op = 0x1b
	Iload2          Op = 0x1c
	Iload3          Op = 0x1d
	Lload0          Op = 0x1e
	Lload1          Op = 0x1f
	Lload2          Op = 0x20
	Lload3          Op = 0x21
	Fload0          Op = 0x22
	Fload1          Op = 0x23
	Fload2          Op = 0x24
	Fload3          Op = 0x25
	Dload0          Op = 0x26
	Dload1          Op = 0x27
	Dload2          Op = 0x28
	Dload3          Op = 0x29
	Aload0          Op = 0x2a
	Aload1          Op = 0x2b
	Aload2          Op = 0x2c
	Aload3          Op = 0x2d
	Iaload          Op = 0x2e
	Laload          Op = 0x2f
	Faload          Op = 0x30
	Daload          Op = 0x31
	Aaload          Op = 0x32
	Baload          Op = 0x33
	Caload          Op = 0x34
	Saload          Op = 0x35
	Istore          Op = 0x36
	Lstore          Op = 0x37
	Fstore          Op = 0x38
	Dstore          Op = 0x39
	Astore          Op = 0x3a
	Istore0         Op = 0x3b
	Istore1         Op = 0x3c
	Istore2         Op = 0x3d
	Istore3         Op = 0x3e
	Lstore0         Op = 0x3f
	Lstore1         Op = 0x40
	Lstore2         Op = 0x41
	Lstore3         Op = 0x42
	Fstore0         Op = 0x43
	Fstore1         Op = 0x44
	Fstore2         Op = 0x45
	Fstore3         Op = 0x46
	Dstore0         Op = 0x47
	Dstore1         Op = 0x48
	Dstore2         Op = 0x49
	Dstore3         Op = 0x4a
	Astore0         Op = 0x4b
	Astore1         Op = 0x4c
	Astore2         Op = 0x4d
	Astore3         Op = 0x4e
	Iastore         Op = 0x4f
	Lastore         Op = 0x50
	Fastore         Op = 0x51
	Dastore         Op = 0x52
	Aastore         Op = 0x53
	Bastore         Op = 0x54
	Castore         Op = 0x55
	Sastore         Op = 0x56
	Pop             Op = 0x57
	Pop2            Op = 0x58
	Dup             Op = 0x59
	DupX1           Op = 0x5a
	DupX2           Op = 0x5b
	Dup2            Op = 0x5c
	Dup2X1          Op = 0x5d
	Dup2X2          Op = 0x5e
	Swap            Op = 0x5f
	Iadd            Op = 0x60
	Ladd            Op = 0x61
	Fadd            Op = 0x62
	Dadd            Op = 0x63
	Isub            Op = 0x64
	Lsub            Op = 0x65
	Fsub            Op = 0x66
	Dsub            Op = 0x67
	Imul            Op = 0x68
	Lmul            Op = 0x69
	Fmul            Op = 0x6a
	Dmul            Op = 0x6b
	Idiv            Op = 0x6c
	Ldiv            Op = 0x6d
	Fdiv            Op = 0x6e
	Ddiv            Op = 0x6f
	Irem            Op = 0x70
	Lrem            Op = 0x71
	Frem            Op = 0x72
	Drem            Op = 0x73
	Ineg            Op = 0x74
	Lneg            Op = 0x75
	Fneg            Op = 0x76
	Dneg            Op = 0x77
	Ishl            Op = 0x78
	Lshl            Op = 0x79
	Ishr            Op = 0x7a
	Lshr            Op = 0x7b
	Iushr           Op = 0x7c
	Lushr           Op = 0x7d
	Iand            Op = 0x7e
	Land            Op = 0x7f
	Ior             Op = 0x80
	Lor             Op = 0x81
	Ixor            Op = 0x82
	Lxor            Op = 0x83
	Iinc            Op = 0x84
	I2l             Op = 0x85
	I2f             Op = 0x86
	I2d             Op = 0x87
	L2i             Op = 0x88
	L2f             Op = 0x89
	L2d             Op = 0x8a
	F2i             Op = 0x8b
	F2l             Op = 0x8c
	F2d             Op = 0x8d
	D2i             Op = 0x8e
	D2l             Op = 0x8f
	D2f             Op = 0x90
	I2b             Op = 0x91
	I2c             Op = 0x92
	I2s             Op = 0x93
	Lcmp            Op = 0x94
	Fcmpl           Op = 0x95
	Fcmpg           Op = 0x96
	Dcmpl           Op = 0x97
	Dcmpg           Op = 0x98
	Ifeq            Op = 0x99
	Ifne            Op = 0x9a
	Iflt            Op = 0x9b
	Ifge            Op = 0x9c
	Ifgt            Op = 0x9d
	Ifle            Op = 0x9e
	IfIcmpeq        Op = 0x9f
	IfIcmpne        Op = 0xa0
	IfIcmplt        Op = 0xa1
	IfIcmpge        Op = 0xa2
	IfIcmpgt        Op = 0xa3
	IfIcmple        Op = 0xa4
	IfAcmpeq        Op = 0xa5
	IfAcmpne        Op = 0xa6
	Goto            Op = 0xa7
	Jsr             Op = 0xa8
	Ret             Op = 0xa9
	Tableswitch     Op = 0xaa
	Lookupswitch    Op = 0xab
	Ireturn         Op = 0xac
	Lreturn         Op = 0xad
	Freturn         Op = 0xae
	Dreturn         Op = 0xaf
	Areturn         Op = 0xb0
	Return          Op = 0xb1
	Getstatic       Op = 0xb2
	Putstatic       Op = 0xb3
	Getfield        Op = 0xb4
	Putfield        Op = 0xb5
	Invokevirtual   Op = 0xb6
	Invokespecial   Op = 0xb7
	Invokestatic    Op = 0xb8
	Invokeinterface Op = 0xb9
	New             Op = 0xbb
	Newarray        Op = 0xbc
	Anewarray       Op = 0xbd
	Arraylength     Op = 0xbe
	Athrow          Op = 0xbf
	Checkcast       Op = 0xc0
	Instanceof      Op = 0xc1
	Monitorenter    Op = 0xc2
	Monitorexit     Op = 0xc3
	Wide            Op = 0xc4
	Multianewarray  Op = 0xc5
	Ifnull          Op = 0xc6
	Ifnonnull       Op = 0xc7
	GotoW           Op = 0xc8
	JsrW            Op = 0xc9
)

// NumOpcodes is the size of the base opcode alphabet (0x00–0xc9).
const NumOpcodes = 0xca

// Format describes an opcode's operand layout.
type Format uint8

// Operand formats.
const (
	FmtNone            Format = iota
	FmtLocal                  // u1 local slot; u2 under wide
	FmtIinc                   // u1 local, s1 delta; u2, s2 under wide
	FmtSByte                  // bipush
	FmtSShort                 // sipush
	FmtCP1                    // ldc
	FmtCP2                    // two-byte constant-pool index
	FmtInvokeInterface        // u2 cp, u1 count, u1 zero
	FmtMultiANewArray         // u2 cp, u1 dimensions
	FmtNewArray               // u1 primitive array type
	FmtBranch2                // s2 relative branch
	FmtBranch4                // s4 relative branch
	FmtTableSwitch
	FmtLookupSwitch
	FmtWidePrefix
	FmtInvalid
)

type opInfo struct {
	name   string
	format Format
}

var opTable = [NumOpcodes]opInfo{
	Nop: {"nop", FmtNone}, AconstNull: {"aconst_null", FmtNone},
	IconstM1: {"iconst_m1", FmtNone}, Iconst0: {"iconst_0", FmtNone},
	Iconst1: {"iconst_1", FmtNone}, Iconst2: {"iconst_2", FmtNone},
	Iconst3: {"iconst_3", FmtNone}, Iconst4: {"iconst_4", FmtNone},
	Iconst5: {"iconst_5", FmtNone}, Lconst0: {"lconst_0", FmtNone},
	Lconst1: {"lconst_1", FmtNone}, Fconst0: {"fconst_0", FmtNone},
	Fconst1: {"fconst_1", FmtNone}, Fconst2: {"fconst_2", FmtNone},
	Dconst0: {"dconst_0", FmtNone}, Dconst1: {"dconst_1", FmtNone},
	Bipush: {"bipush", FmtSByte}, Sipush: {"sipush", FmtSShort},
	Ldc: {"ldc", FmtCP1}, LdcW: {"ldc_w", FmtCP2}, Ldc2W: {"ldc2_w", FmtCP2},
	Iload: {"iload", FmtLocal}, Lload: {"lload", FmtLocal},
	Fload: {"fload", FmtLocal}, Dload: {"dload", FmtLocal},
	Aload:  {"aload", FmtLocal},
	Iload0: {"iload_0", FmtNone}, Iload1: {"iload_1", FmtNone},
	Iload2: {"iload_2", FmtNone}, Iload3: {"iload_3", FmtNone},
	Lload0: {"lload_0", FmtNone}, Lload1: {"lload_1", FmtNone},
	Lload2: {"lload_2", FmtNone}, Lload3: {"lload_3", FmtNone},
	Fload0: {"fload_0", FmtNone}, Fload1: {"fload_1", FmtNone},
	Fload2: {"fload_2", FmtNone}, Fload3: {"fload_3", FmtNone},
	Dload0: {"dload_0", FmtNone}, Dload1: {"dload_1", FmtNone},
	Dload2: {"dload_2", FmtNone}, Dload3: {"dload_3", FmtNone},
	Aload0: {"aload_0", FmtNone}, Aload1: {"aload_1", FmtNone},
	Aload2: {"aload_2", FmtNone}, Aload3: {"aload_3", FmtNone},
	Iaload: {"iaload", FmtNone}, Laload: {"laload", FmtNone},
	Faload: {"faload", FmtNone}, Daload: {"daload", FmtNone},
	Aaload: {"aaload", FmtNone}, Baload: {"baload", FmtNone},
	Caload: {"caload", FmtNone}, Saload: {"saload", FmtNone},
	Istore: {"istore", FmtLocal}, Lstore: {"lstore", FmtLocal},
	Fstore: {"fstore", FmtLocal}, Dstore: {"dstore", FmtLocal},
	Astore:  {"astore", FmtLocal},
	Istore0: {"istore_0", FmtNone}, Istore1: {"istore_1", FmtNone},
	Istore2: {"istore_2", FmtNone}, Istore3: {"istore_3", FmtNone},
	Lstore0: {"lstore_0", FmtNone}, Lstore1: {"lstore_1", FmtNone},
	Lstore2: {"lstore_2", FmtNone}, Lstore3: {"lstore_3", FmtNone},
	Fstore0: {"fstore_0", FmtNone}, Fstore1: {"fstore_1", FmtNone},
	Fstore2: {"fstore_2", FmtNone}, Fstore3: {"fstore_3", FmtNone},
	Dstore0: {"dstore_0", FmtNone}, Dstore1: {"dstore_1", FmtNone},
	Dstore2: {"dstore_2", FmtNone}, Dstore3: {"dstore_3", FmtNone},
	Astore0: {"astore_0", FmtNone}, Astore1: {"astore_1", FmtNone},
	Astore2: {"astore_2", FmtNone}, Astore3: {"astore_3", FmtNone},
	Iastore: {"iastore", FmtNone}, Lastore: {"lastore", FmtNone},
	Fastore: {"fastore", FmtNone}, Dastore: {"dastore", FmtNone},
	Aastore: {"aastore", FmtNone}, Bastore: {"bastore", FmtNone},
	Castore: {"castore", FmtNone}, Sastore: {"sastore", FmtNone},
	Pop: {"pop", FmtNone}, Pop2: {"pop2", FmtNone}, Dup: {"dup", FmtNone},
	DupX1: {"dup_x1", FmtNone}, DupX2: {"dup_x2", FmtNone},
	Dup2: {"dup2", FmtNone}, Dup2X1: {"dup2_x1", FmtNone},
	Dup2X2: {"dup2_x2", FmtNone}, Swap: {"swap", FmtNone},
	Iadd: {"iadd", FmtNone}, Ladd: {"ladd", FmtNone},
	Fadd: {"fadd", FmtNone}, Dadd: {"dadd", FmtNone},
	Isub: {"isub", FmtNone}, Lsub: {"lsub", FmtNone},
	Fsub: {"fsub", FmtNone}, Dsub: {"dsub", FmtNone},
	Imul: {"imul", FmtNone}, Lmul: {"lmul", FmtNone},
	Fmul: {"fmul", FmtNone}, Dmul: {"dmul", FmtNone},
	Idiv: {"idiv", FmtNone}, Ldiv: {"ldiv", FmtNone},
	Fdiv: {"fdiv", FmtNone}, Ddiv: {"ddiv", FmtNone},
	Irem: {"irem", FmtNone}, Lrem: {"lrem", FmtNone},
	Frem: {"frem", FmtNone}, Drem: {"drem", FmtNone},
	Ineg: {"ineg", FmtNone}, Lneg: {"lneg", FmtNone},
	Fneg: {"fneg", FmtNone}, Dneg: {"dneg", FmtNone},
	Ishl: {"ishl", FmtNone}, Lshl: {"lshl", FmtNone},
	Ishr: {"ishr", FmtNone}, Lshr: {"lshr", FmtNone},
	Iushr: {"iushr", FmtNone}, Lushr: {"lushr", FmtNone},
	Iand: {"iand", FmtNone}, Land: {"land", FmtNone},
	Ior: {"ior", FmtNone}, Lor: {"lor", FmtNone},
	Ixor: {"ixor", FmtNone}, Lxor: {"lxor", FmtNone},
	Iinc: {"iinc", FmtIinc},
	I2l:  {"i2l", FmtNone}, I2f: {"i2f", FmtNone}, I2d: {"i2d", FmtNone},
	L2i: {"l2i", FmtNone}, L2f: {"l2f", FmtNone}, L2d: {"l2d", FmtNone},
	F2i: {"f2i", FmtNone}, F2l: {"f2l", FmtNone}, F2d: {"f2d", FmtNone},
	D2i: {"d2i", FmtNone}, D2l: {"d2l", FmtNone}, D2f: {"d2f", FmtNone},
	I2b: {"i2b", FmtNone}, I2c: {"i2c", FmtNone}, I2s: {"i2s", FmtNone},
	Lcmp: {"lcmp", FmtNone}, Fcmpl: {"fcmpl", FmtNone},
	Fcmpg: {"fcmpg", FmtNone}, Dcmpl: {"dcmpl", FmtNone},
	Dcmpg: {"dcmpg", FmtNone},
	Ifeq:  {"ifeq", FmtBranch2}, Ifne: {"ifne", FmtBranch2},
	Iflt: {"iflt", FmtBranch2}, Ifge: {"ifge", FmtBranch2},
	Ifgt: {"ifgt", FmtBranch2}, Ifle: {"ifle", FmtBranch2},
	IfIcmpeq: {"if_icmpeq", FmtBranch2}, IfIcmpne: {"if_icmpne", FmtBranch2},
	IfIcmplt: {"if_icmplt", FmtBranch2}, IfIcmpge: {"if_icmpge", FmtBranch2},
	IfIcmpgt: {"if_icmpgt", FmtBranch2}, IfIcmple: {"if_icmple", FmtBranch2},
	IfAcmpeq: {"if_acmpeq", FmtBranch2}, IfAcmpne: {"if_acmpne", FmtBranch2},
	Goto: {"goto", FmtBranch2}, Jsr: {"jsr", FmtBranch2},
	Ret:          {"ret", FmtLocal},
	Tableswitch:  {"tableswitch", FmtTableSwitch},
	Lookupswitch: {"lookupswitch", FmtLookupSwitch},
	Ireturn:      {"ireturn", FmtNone}, Lreturn: {"lreturn", FmtNone},
	Freturn: {"freturn", FmtNone}, Dreturn: {"dreturn", FmtNone},
	Areturn: {"areturn", FmtNone}, Return: {"return", FmtNone},
	Getstatic: {"getstatic", FmtCP2}, Putstatic: {"putstatic", FmtCP2},
	Getfield: {"getfield", FmtCP2}, Putfield: {"putfield", FmtCP2},
	Invokevirtual:   {"invokevirtual", FmtCP2},
	Invokespecial:   {"invokespecial", FmtCP2},
	Invokestatic:    {"invokestatic", FmtCP2},
	Invokeinterface: {"invokeinterface", FmtInvokeInterface},
	0xba:            {"invokedynamic", FmtInvalid}, // not in the 1.2 instruction set
	New:             {"new", FmtCP2},
	Newarray:        {"newarray", FmtNewArray},
	Anewarray:       {"anewarray", FmtCP2},
	Arraylength:     {"arraylength", FmtNone}, Athrow: {"athrow", FmtNone},
	Checkcast: {"checkcast", FmtCP2}, Instanceof: {"instanceof", FmtCP2},
	Monitorenter: {"monitorenter", FmtNone}, Monitorexit: {"monitorexit", FmtNone},
	Wide:           {"wide", FmtWidePrefix},
	Multianewarray: {"multianewarray", FmtMultiANewArray},
	Ifnull:         {"ifnull", FmtBranch2}, Ifnonnull: {"ifnonnull", FmtBranch2},
	GotoW: {"goto_w", FmtBranch4}, JsrW: {"jsr_w", FmtBranch4},
}

// String returns the JVM mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return "invalid"
}

// FormatOf returns the operand format of o, or FmtInvalid for opcodes
// outside the supported set.
func FormatOf(o Op) Format {
	if int(o) >= len(opTable) || opTable[o].name == "" {
		return FmtInvalid
	}
	return opTable[o].format
}

// IsCPRef reports whether o carries a constant-pool index operand.
func IsCPRef(o Op) bool {
	switch FormatOf(o) {
	case FmtCP1, FmtCP2, FmtInvokeInterface, FmtMultiANewArray:
		return true
	}
	return false
}

// IsBranch reports whether o carries a branch target (excluding switches).
func IsBranch(o Op) bool {
	f := FormatOf(o)
	return f == FmtBranch2 || f == FmtBranch4
}
