package bytecode

import (
	"bytes"
	"math/rand"
	"testing"
)

// buildSample assembles a method body exercising every operand format.
func buildSample(t *testing.T) []byte {
	t.Helper()
	a := NewAssembler()
	loop := a.NewLabel()
	end := a.NewLabel()
	c0, c1, c2, def := a.NewLabel(), a.NewLabel(), a.NewLabel(), a.NewLabel()

	a.Op(Iconst0)
	a.Local(Istore, 1)
	a.Bind(loop)
	a.Local(Iload, 1)
	a.SByte(10)
	a.Branch(IfIcmpge, end)
	a.Local(Aload, 0)
	a.CP(Getfield, 17)
	a.Local(Iload, 1)
	a.Op(Iadd)
	a.Local(Istore, 2)
	a.Local(Iload, 2)
	a.TableSwitch(0, []Label{c0, c1, c2}, def)
	a.Bind(c0)
	a.Ldc(5)
	a.Op(Pop)
	a.Branch(Goto, def)
	a.Bind(c1)
	a.Ldc(300) // forces ldc_w
	a.Op(Pop)
	a.Branch(Goto, def)
	a.Bind(c2)
	a.Local(Iload, 2)
	a.LookupSwitch([]int32{-5, 9, 1000}, []Label{def, def, def}, def)
	a.Bind(def)
	a.Iinc(1, 1)
	a.Iinc(1, 1000) // forces wide iinc
	a.Local(Iload, 300)
	a.Local(Istore, 300) // forces wide load/store
	a.SShort(20000)
	a.Op(Pop)
	a.InvokeInterface(44, 2)
	a.MultiANewArray(45, 2)
	a.Op(Pop)
	a.NewArray(10)
	a.Op(Pop)
	a.Branch(Goto, loop)
	a.Bind(end)
	a.Op(Return)

	code, err := a.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return code
}

func TestAssembleDecodeEncodeRoundTrip(t *testing.T) {
	code := buildSample(t)
	insns, err := Decode(code)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	back, err := Encode(insns)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.Equal(code, back) {
		t.Fatal("decode∘encode is not identity")
	}
	if err := Check(code); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestDecodedOperands(t *testing.T) {
	code := buildSample(t)
	insns, err := Decode(code)
	if err != nil {
		t.Fatal(err)
	}
	var sawWideIinc, sawLdcW, sawTable, sawLookup, sawWideLoad bool
	for i := range insns {
		in := &insns[i]
		switch {
		case in.Op == Iinc && in.Wide:
			sawWideIinc = true
			if in.B != 1000 {
				t.Errorf("wide iinc delta = %d, want 1000", in.B)
			}
		case in.Op == LdcW:
			sawLdcW = true
			if in.A != 300 {
				t.Errorf("ldc_w index = %d, want 300", in.A)
			}
		case in.Op == Tableswitch:
			sawTable = true
			if in.Low != 0 || in.High != 2 || len(in.Targets) != 3 {
				t.Errorf("tableswitch bounds %d..%d targets %d", in.Low, in.High, len(in.Targets))
			}
		case in.Op == Lookupswitch:
			sawLookup = true
			if len(in.Keys) != 3 || in.Keys[0] != -5 || in.Keys[2] != 1000 {
				t.Errorf("lookupswitch keys = %v", in.Keys)
			}
		case in.Op == Iload && in.Wide:
			sawWideLoad = true
			if in.A != 300 {
				t.Errorf("wide iload slot = %d, want 300", in.A)
			}
		}
	}
	for name, saw := range map[string]bool{
		"wide iinc": sawWideIinc, "ldc_w": sawLdcW, "tableswitch": sawTable,
		"lookupswitch": sawLookup, "wide iload": sawWideLoad,
	} {
		if !saw {
			t.Errorf("sample did not exercise %s", name)
		}
	}
}

func TestCompactLocalForms(t *testing.T) {
	a := NewAssembler()
	a.Local(Iload, 0)
	a.Local(Aload, 3)
	a.Local(Istore, 2)
	a.Local(Iload, 4)
	a.Op(Return)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{byte(Iload0), byte(Aload3), byte(Istore2), byte(Iload), 4, byte(Return)}
	if !bytes.Equal(code, want) {
		t.Fatalf("code = % x, want % x", code, want)
	}
}

func TestSwitchPaddingAllPhases(t *testing.T) {
	// Place a tableswitch at each offset mod 4 and confirm roundtrip.
	for pre := 0; pre < 4; pre++ {
		a := NewAssembler()
		for i := 0; i < pre; i++ {
			a.Op(Nop)
		}
		l := a.NewLabel()
		a.Op(Iconst0)
		a.TableSwitch(7, []Label{l, l}, l)
		a.Bind(l)
		a.Op(Return)
		code, err := a.Assemble()
		if err != nil {
			t.Fatalf("pre=%d: %v", pre, err)
		}
		insns, err := Decode(code)
		if err != nil {
			t.Fatalf("pre=%d: %v", pre, err)
		}
		back, err := Encode(insns)
		if err != nil || !bytes.Equal(code, back) {
			t.Fatalf("pre=%d: roundtrip mismatch (%v)", pre, err)
		}
		if err := Check(code); err != nil {
			t.Fatalf("pre=%d: %v", pre, err)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"truncated bipush":     {byte(Bipush)},
		"truncated sipush":     {byte(Sipush), 1},
		"truncated branch":     {byte(Goto), 0},
		"invalid opcode":       {0xba, 0, 0},
		"undefined opcode":     {0xfe},
		"truncated wide":       {byte(Wide)},
		"wide on bad op":       {byte(Wide), byte(Iadd)},
		"truncated interface":  {byte(Invokeinterface), 0, 1, 2},
		"bad interface pad":    {byte(Invokeinterface), 0, 1, 2, 9},
		"truncated table":      {byte(Tableswitch), 0, 0, 0},
		"oversized lookup":     append([]byte{byte(Lookupswitch), 0, 0, 0, 0, 0, 0, 0}, 0x7f, 0xff, 0xff, 0xff),
		"reversed table range": {byte(Tableswitch), 0, 0, 0, 0, 0, 0, 12, 0, 0, 0, 9, 0, 0, 0, 1},
	}
	for name, code := range cases {
		if _, err := Decode(code); err == nil {
			t.Errorf("%s: Decode succeeded", name)
		}
	}
}

func TestCheckRejectsMisalignedTargets(t *testing.T) {
	// goto into the middle of a sipush.
	code := []byte{byte(Goto), 0, 4, byte(Sipush), 0, 9, byte(Return)}
	if err := Check(code); err == nil {
		t.Fatal("Check accepted a branch into an instruction")
	}
}

func TestUnboundLabel(t *testing.T) {
	a := NewAssembler()
	l := a.NewLabel()
	a.Branch(Goto, l)
	if _, err := a.Assemble(); err == nil {
		t.Fatal("Assemble with unbound label succeeded")
	}
}

func TestBranchOutOfRange(t *testing.T) {
	a := NewAssembler()
	end := a.NewLabel()
	a.Branch(Goto, end)
	for i := 0; i < 40000; i++ {
		a.Op(Nop)
	}
	a.Bind(end)
	a.Op(Return)
	if _, err := a.Assemble(); err == nil {
		t.Fatal("s2 branch over 40000 bytes succeeded")
	}
}

func TestDecodeRandomizedNoPanic(t *testing.T) {
	// Fuzz-ish: random bytes must never panic, only error or decode.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		code := make([]byte, rng.Intn(64))
		for i := range code {
			code[i] = byte(rng.Intn(256))
		}
		insns, err := Decode(code)
		if err != nil {
			continue
		}
		back, err := Encode(insns)
		if err != nil {
			continue
		}
		if !bytes.Equal(code, back) {
			t.Fatalf("valid decode did not re-encode identically: % x", code)
		}
	}
}
