package bytecode

import "fmt"

// Label identifies a branch target within an Assembler.
type Label int

// Assembler builds a code array with symbolic labels. Code generators
// (the MiniJava compiler, the corpus synthesizer) emit instructions and
// bind labels; Assemble lays out offsets, pads switches, and resolves
// branches.
type Assembler struct {
	insns   []asmInsn
	labels  []int // label -> instruction index, -1 if unbound
	offsets []int // filled by Assemble; offsets[i] is instruction i's offset
	err     error
}

type asmInsn struct {
	in      Instruction
	target  Label   // branch target, -1 if none
	targets []Label // switch targets
	defLbl  Label
	bound   []Label // labels bound to this instruction
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler { return &Assembler{} }

func (a *Assembler) setErr(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf("bytecode: "+format, args...)
	}
}

// NewLabel allocates an unbound label.
func (a *Assembler) NewLabel() Label {
	a.labels = append(a.labels, -1)
	return Label(len(a.labels) - 1)
}

// Bind binds l to the next emitted instruction.
func (a *Assembler) Bind(l Label) {
	if a.labels[l] != -1 {
		a.setErr("label %d bound twice", l)
		return
	}
	a.labels[l] = len(a.insns)
}

func (a *Assembler) push(in Instruction, target Label, defLbl Label, targets []Label) {
	a.insns = append(a.insns, asmInsn{in: in, target: target, defLbl: defLbl, targets: targets})
}

// Op emits an operand-less instruction.
func (a *Assembler) Op(op Op) {
	if FormatOf(op) != FmtNone {
		a.setErr("%s requires operands", op)
		return
	}
	a.push(Instruction{Op: op}, -1, -1, nil)
}

// Local emits a local-variable instruction (iload..astore, ret), using the
// compact _0.._3 forms where they exist and the wide prefix when needed.
func (a *Assembler) Local(op Op, slot int) {
	if FormatOf(op) != FmtLocal {
		a.setErr("%s is not a local-variable instruction", op)
		return
	}
	if slot < 0 || slot > 0xffff {
		a.setErr("local slot %d out of range", slot)
		return
	}
	if slot <= 3 && op != Ret {
		var base Op
		switch op {
		case Iload:
			base = Iload0
		case Lload:
			base = Lload0
		case Fload:
			base = Fload0
		case Dload:
			base = Dload0
		case Aload:
			base = Aload0
		case Istore:
			base = Istore0
		case Lstore:
			base = Lstore0
		case Fstore:
			base = Fstore0
		case Dstore:
			base = Dstore0
		case Astore:
			base = Astore0
		}
		a.push(Instruction{Op: base + Op(slot)}, -1, -1, nil)
		return
	}
	a.push(Instruction{Op: op, A: slot, Wide: slot > 0xff}, -1, -1, nil)
}

// Iinc emits iinc, widening when the slot or delta requires it.
func (a *Assembler) Iinc(slot, delta int) {
	if slot < 0 || slot > 0xffff || delta < -32768 || delta > 32767 {
		a.setErr("iinc %d %d out of range", slot, delta)
		return
	}
	wide := slot > 0xff || delta < -128 || delta > 127
	a.push(Instruction{Op: Iinc, A: slot, B: delta, Wide: wide}, -1, -1, nil)
}

// SByte emits bipush.
func (a *Assembler) SByte(v int) { a.push(Instruction{Op: Bipush, A: v}, -1, -1, nil) }

// SShort emits sipush.
func (a *Assembler) SShort(v int) { a.push(Instruction{Op: Sipush, A: v}, -1, -1, nil) }

// NewArray emits newarray with a primitive array-type code.
func (a *Assembler) NewArray(atype int) { a.push(Instruction{Op: Newarray, A: atype}, -1, -1, nil) }

// CP emits a two-byte constant-pool instruction (getfield, invokevirtual,
// new, checkcast, ...).
func (a *Assembler) CP(op Op, index uint16) {
	switch FormatOf(op) {
	case FmtCP2:
		a.push(Instruction{Op: op, A: int(index)}, -1, -1, nil)
	default:
		a.setErr("%s is not a two-byte constant-pool instruction", op)
	}
}

// Ldc emits ldc or ldc_w depending on the index width.
func (a *Assembler) Ldc(index uint16) {
	if index <= 0xff {
		a.push(Instruction{Op: Ldc, A: int(index)}, -1, -1, nil)
	} else {
		a.push(Instruction{Op: LdcW, A: int(index)}, -1, -1, nil)
	}
}

// Ldc2 emits ldc2_w for long/double constants.
func (a *Assembler) Ldc2(index uint16) {
	a.push(Instruction{Op: Ldc2W, A: int(index)}, -1, -1, nil)
}

// InvokeInterface emits invokeinterface with its arg-slot count.
func (a *Assembler) InvokeInterface(index uint16, count int) {
	a.push(Instruction{Op: Invokeinterface, A: int(index), B: count}, -1, -1, nil)
}

// MultiANewArray emits multianewarray.
func (a *Assembler) MultiANewArray(index uint16, dims int) {
	a.push(Instruction{Op: Multianewarray, A: int(index), B: dims}, -1, -1, nil)
}

// Branch emits a conditional or unconditional branch to l.
func (a *Assembler) Branch(op Op, l Label) {
	if !IsBranch(op) {
		a.setErr("%s is not a branch", op)
		return
	}
	a.push(Instruction{Op: op}, l, -1, nil)
}

// TableSwitch emits a tableswitch covering keys low..low+len(targets)-1.
func (a *Assembler) TableSwitch(low int32, targets []Label, def Label) {
	in := Instruction{Op: Tableswitch, Low: low, High: low + int32(len(targets)) - 1}
	in.Targets = make([]int, len(targets))
	a.push(in, -1, def, append([]Label(nil), targets...))
}

// LookupSwitch emits a lookupswitch; keys must be sorted ascending.
func (a *Assembler) LookupSwitch(keys []int32, targets []Label, def Label) {
	if len(keys) != len(targets) {
		a.setErr("lookupswitch with %d keys and %d targets", len(keys), len(targets))
		return
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			a.setErr("lookupswitch keys not strictly ascending")
			return
		}
	}
	in := Instruction{Op: Lookupswitch, Keys: append([]int32(nil), keys...)}
	in.Targets = make([]int, len(targets))
	a.push(in, -1, def, append([]Label(nil), targets...))
}

// OffsetOf returns the byte offset a label resolved to; valid only after a
// successful Assemble. Code generators use it to build exception tables.
func (a *Assembler) OffsetOf(l Label) int { return a.offsets[a.labels[l]] }

// ApproxSize estimates the encoded size of the code emitted so far
// (switch padding is approximated); generators use it to hit size targets.
func (a *Assembler) ApproxSize() int {
	size := 0
	for i := range a.insns {
		size += a.insns[i].in.Size()
	}
	return size
}

// Assemble lays out the code and resolves labels, returning the code array.
func (a *Assembler) Assemble() ([]byte, error) {
	if a.err != nil {
		return nil, a.err
	}
	for l, idx := range a.labels {
		if idx == -1 {
			return nil, fmt.Errorf("bytecode: label %d never bound", l)
		}
		if idx > len(a.insns) {
			return nil, fmt.Errorf("bytecode: label %d bound past end", l)
		}
	}
	// Iterate layout until offsets stabilize: switch padding depends on the
	// offsets, and each pass only shrinks or grows pads within [0,3].
	offsets := make([]int, len(a.insns)+1)
	for pass := 0; ; pass++ {
		changed := false
		pos := 0
		for i := range a.insns {
			if offsets[i] != pos {
				offsets[i] = pos
				changed = true
			}
			a.insns[i].in.Offset = pos
			pos += a.insns[i].in.Size()
		}
		if offsets[len(a.insns)] != pos {
			offsets[len(a.insns)] = pos
			changed = true
		}
		if !changed {
			break
		}
		if pass > len(a.insns)+4 {
			return nil, fmt.Errorf("bytecode: layout did not converge")
		}
	}
	a.offsets = offsets
	labelOff := func(l Label) int {
		idx := a.labels[l]
		return offsets[idx]
	}
	out := make([]Instruction, len(a.insns))
	for i := range a.insns {
		ai := &a.insns[i]
		in := ai.in
		if ai.target >= 0 {
			in.A = labelOff(ai.target)
			if rel := in.A - in.Offset; in.Op != GotoW && in.Op != JsrW && (rel < -32768 || rel > 32767) {
				return nil, fmt.Errorf("bytecode: branch at %d to %d exceeds s2 range", in.Offset, in.A)
			}
		}
		if ai.defLbl >= 0 {
			in.Default = labelOff(ai.defLbl)
			for j, t := range ai.targets {
				in.Targets[j] = labelOff(t)
			}
		}
		out[i] = in
	}
	return Encode(out)
}
