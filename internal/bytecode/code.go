package bytecode

import (
	"encoding/binary"
	"fmt"

	"classpack/internal/corrupt"
)

// Instruction is one decoded JVM instruction. Branch targets (A for
// branches, Default and Targets for switches) are absolute byte offsets
// within the code array.
type Instruction struct {
	Offset int // byte offset of the opcode in the code array
	Op     Op
	Wide   bool // instruction was prefixed by wide

	// A holds the primary operand: local slot (FmtLocal, FmtIinc), pushed
	// constant (FmtSByte, FmtSShort), constant-pool index (FmtCP1, FmtCP2,
	// FmtInvokeInterface, FmtMultiANewArray), primitive array type
	// (FmtNewArray) or absolute branch target (FmtBranch2, FmtBranch4).
	A int
	// B holds the secondary operand: iinc delta, invokeinterface count, or
	// multianewarray dimension count.
	B int

	// Switch payload.
	Default int   // absolute target
	Low     int32 // tableswitch bounds
	High    int32
	Keys    []int32 // lookupswitch match keys
	Targets []int   // absolute targets, one per key / table slot
}

// Size returns the encoded byte size of the instruction at its offset.
func (in *Instruction) Size() int {
	switch FormatOf(in.Op) {
	case FmtNone:
		return 1
	case FmtLocal:
		if in.Wide {
			return 4
		}
		return 2
	case FmtIinc:
		if in.Wide {
			return 6
		}
		return 3
	case FmtSByte, FmtCP1, FmtNewArray:
		return 2
	case FmtSShort, FmtCP2, FmtBranch2:
		return 3
	case FmtBranch4:
		return 5
	case FmtInvokeInterface, FmtMultiANewArray:
		switch FormatOf(in.Op) {
		case FmtInvokeInterface:
			return 5
		default:
			return 4
		}
	case FmtTableSwitch:
		pad := 3 - in.Offset%4
		return 1 + pad + 12 + 4*len(in.Targets)
	case FmtLookupSwitch:
		pad := 3 - in.Offset%4
		return 1 + pad + 8 + 8*len(in.Keys)
	default:
		return 1
	}
}

// Decode decodes a complete code array into instructions.
func Decode(code []byte) ([]Instruction, error) {
	return DecodeAppend(nil, code)
}

// DecodeAppend decodes a complete code array, appending the instructions
// to dst (which may be a truncated slice being reused) and returning the
// extended slice. On error the returned slice is nil.
func DecodeAppend(dst []Instruction, code []byte) ([]Instruction, error) {
	pos := 0
	for pos < len(code) {
		in, next, err := DecodeOne(code, pos)
		if err != nil {
			return nil, err
		}
		dst = append(dst, in)
		pos = next
	}
	return dst, nil
}

func u2at(code []byte, pos int) (int, error) {
	if pos+2 > len(code) {
		return 0, corrupt.Errorf("bytecode", int64(pos), "truncated operand")
	}
	return int(binary.BigEndian.Uint16(code[pos:])), nil
}

func s2at(code []byte, pos int) (int, error) {
	v, err := u2at(code, pos)
	return int(int16(v)), err
}

func s4at(code []byte, pos int) (int, error) {
	if pos+4 > len(code) {
		return 0, corrupt.Errorf("bytecode", int64(pos), "truncated operand")
	}
	return int(int32(binary.BigEndian.Uint32(code[pos:]))), nil
}

// DecodeOne decodes the instruction at pos, returning it and the offset of
// the next instruction.
func DecodeOne(code []byte, pos int) (Instruction, int, error) {
	in := Instruction{Offset: pos}
	if pos >= len(code) {
		return in, 0, corrupt.Errorf("bytecode", int64(pos), "decode past end")
	}
	op := Op(code[pos])
	if op == Wide {
		if pos+1 >= len(code) {
			return in, 0, corrupt.Errorf("bytecode", int64(pos), "truncated wide prefix")
		}
		in.Wide = true
		in.Op = Op(code[pos+1])
		switch FormatOf(in.Op) {
		case FmtLocal:
			v, err := u2at(code, pos+2)
			if err != nil {
				return in, 0, err
			}
			in.A = v
			return in, pos + 4, nil
		case FmtIinc:
			v, err := u2at(code, pos+2)
			if err != nil {
				return in, 0, err
			}
			d, err := s2at(code, pos+4)
			if err != nil {
				return in, 0, err
			}
			in.A, in.B = v, d
			return in, pos + 6, nil
		default:
			return in, 0, corrupt.Errorf("bytecode", int64(pos), "wide prefix on %s", in.Op)
		}
	}
	in.Op = op
	switch FormatOf(op) {
	case FmtInvalid:
		return in, 0, corrupt.Errorf("bytecode", int64(pos), "invalid opcode 0x%02x", byte(op))
	case FmtNone:
		return in, pos + 1, nil
	case FmtLocal, FmtCP1, FmtNewArray:
		if pos+1 >= len(code) {
			return in, 0, corrupt.Errorf("bytecode", int64(pos), "truncated %s", op)
		}
		in.A = int(code[pos+1])
		return in, pos + 2, nil
	case FmtSByte:
		if pos+1 >= len(code) {
			return in, 0, corrupt.Errorf("bytecode", int64(pos), "truncated %s", op)
		}
		in.A = int(int8(code[pos+1]))
		return in, pos + 2, nil
	case FmtSShort:
		v, err := s2at(code, pos+1)
		if err != nil {
			return in, 0, err
		}
		in.A = v
		return in, pos + 3, nil
	case FmtCP2:
		v, err := u2at(code, pos+1)
		if err != nil {
			return in, 0, err
		}
		in.A = v
		return in, pos + 3, nil
	case FmtIinc:
		if pos+2 >= len(code) {
			return in, 0, corrupt.Errorf("bytecode", int64(pos), "truncated iinc")
		}
		in.A = int(code[pos+1])
		in.B = int(int8(code[pos+2]))
		return in, pos + 3, nil
	case FmtBranch2:
		v, err := s2at(code, pos+1)
		if err != nil {
			return in, 0, err
		}
		in.A = pos + v
		return in, pos + 3, nil
	case FmtBranch4:
		v, err := s4at(code, pos+1)
		if err != nil {
			return in, 0, err
		}
		in.A = pos + v
		return in, pos + 5, nil
	case FmtInvokeInterface:
		v, err := u2at(code, pos+1)
		if err != nil {
			return in, 0, err
		}
		if pos+4 >= len(code) {
			return in, 0, corrupt.Errorf("bytecode", int64(pos), "truncated invokeinterface")
		}
		in.A = v
		in.B = int(code[pos+3])
		if code[pos+4] != 0 {
			return in, 0, corrupt.Errorf("bytecode", int64(pos), "invokeinterface pad byte %d", code[pos+4])
		}
		return in, pos + 5, nil
	case FmtMultiANewArray:
		v, err := u2at(code, pos+1)
		if err != nil {
			return in, 0, err
		}
		if pos+3 >= len(code) {
			return in, 0, corrupt.Errorf("bytecode", int64(pos), "truncated multianewarray")
		}
		in.A = v
		in.B = int(code[pos+3])
		return in, pos + 4, nil
	case FmtTableSwitch:
		p := pos + 1 + (3 - pos%4)
		def, err := s4at(code, p)
		if err != nil {
			return in, 0, err
		}
		lo, err := s4at(code, p+4)
		if err != nil {
			return in, 0, err
		}
		hi, err := s4at(code, p+8)
		if err != nil {
			return in, 0, err
		}
		if int64(hi) < int64(lo) {
			return in, 0, corrupt.Errorf("bytecode", int64(pos), "tableswitch high %d < low %d", hi, lo)
		}
		n := int(int64(hi) - int64(lo) + 1)
		if n > (len(code)-p)/4 {
			return in, 0, corrupt.Errorf("bytecode", int64(pos), "tableswitch with %d entries overruns code", n)
		}
		in.Default = pos + def
		in.Low, in.High = int32(lo), int32(hi)
		in.Targets = make([]int, n)
		p += 12
		for i := range in.Targets {
			t, err := s4at(code, p)
			if err != nil {
				return in, 0, err
			}
			in.Targets[i] = pos + t
			p += 4
		}
		return in, p, nil
	case FmtLookupSwitch:
		p := pos + 1 + (3 - pos%4)
		def, err := s4at(code, p)
		if err != nil {
			return in, 0, err
		}
		n, err := s4at(code, p+4)
		if err != nil {
			return in, 0, err
		}
		if n < 0 || n > (len(code)-p)/8 {
			return in, 0, corrupt.Errorf("bytecode", int64(pos), "lookupswitch with %d pairs overruns code", n)
		}
		in.Default = pos + def
		in.Keys = make([]int32, n)
		in.Targets = make([]int, n)
		p += 8
		for i := 0; i < n; i++ {
			k, err := s4at(code, p)
			if err != nil {
				return in, 0, err
			}
			t, err := s4at(code, p+4)
			if err != nil {
				return in, 0, err
			}
			in.Keys[i] = int32(k)
			in.Targets[i] = pos + t
			p += 8
		}
		return in, p, nil
	default:
		return in, 0, corrupt.Errorf("bytecode", int64(pos), "unhandled format for %s", op)
	}
}

// Encode re-serializes instructions previously produced by Decode (their
// Offset fields must describe a contiguous layout). The output is
// byte-identical to the original array when operands are unchanged.
func Encode(insns []Instruction) ([]byte, error) {
	size := 0
	if n := len(insns); n > 0 {
		size = insns[n-1].Offset + insns[n-1].Size()
	}
	out := make([]byte, 0, size)
	for i := range insns {
		in := &insns[i]
		if in.Offset != len(out) {
			return nil, fmt.Errorf("bytecode: instruction %d offset %d does not match stream position %d",
				i, in.Offset, len(out))
		}
		var err error
		out, err = appendInstruction(out, in)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func appendInstruction(out []byte, in *Instruction) ([]byte, error) {
	pos := in.Offset
	switch FormatOf(in.Op) {
	case FmtNone:
		return append(out, byte(in.Op)), nil
	case FmtLocal:
		if in.Wide {
			out = append(out, byte(Wide), byte(in.Op))
			return binary.BigEndian.AppendUint16(out, uint16(in.A)), nil
		}
		if in.A > 0xff {
			return nil, fmt.Errorf("bytecode: %s local %d needs wide", in.Op, in.A)
		}
		return append(out, byte(in.Op), byte(in.A)), nil
	case FmtIinc:
		if in.Wide {
			out = append(out, byte(Wide), byte(in.Op))
			out = binary.BigEndian.AppendUint16(out, uint16(in.A))
			return binary.BigEndian.AppendUint16(out, uint16(int16(in.B))), nil
		}
		if in.A > 0xff || in.B < -128 || in.B > 127 {
			return nil, fmt.Errorf("bytecode: iinc %d %d needs wide", in.A, in.B)
		}
		return append(out, byte(in.Op), byte(in.A), byte(int8(in.B))), nil
	case FmtSByte, FmtCP1, FmtNewArray:
		return append(out, byte(in.Op), byte(in.A)), nil
	case FmtSShort, FmtCP2:
		out = append(out, byte(in.Op))
		return binary.BigEndian.AppendUint16(out, uint16(in.A)), nil
	case FmtBranch2:
		rel := in.A - pos
		if rel < -32768 || rel > 32767 {
			return nil, fmt.Errorf("bytecode: branch offset %d out of s2 range at %d", rel, pos)
		}
		out = append(out, byte(in.Op))
		return binary.BigEndian.AppendUint16(out, uint16(int16(rel))), nil
	case FmtBranch4:
		out = append(out, byte(in.Op))
		return binary.BigEndian.AppendUint32(out, uint32(int32(in.A-pos))), nil
	case FmtInvokeInterface:
		out = append(out, byte(in.Op))
		out = binary.BigEndian.AppendUint16(out, uint16(in.A))
		return append(out, byte(in.B), 0), nil
	case FmtMultiANewArray:
		out = append(out, byte(in.Op))
		out = binary.BigEndian.AppendUint16(out, uint16(in.A))
		return append(out, byte(in.B)), nil
	case FmtTableSwitch:
		out = append(out, byte(in.Op))
		for i := 0; i < 3-pos%4; i++ {
			out = append(out, 0)
		}
		out = binary.BigEndian.AppendUint32(out, uint32(int32(in.Default-pos)))
		out = binary.BigEndian.AppendUint32(out, uint32(in.Low))
		out = binary.BigEndian.AppendUint32(out, uint32(in.High))
		for _, t := range in.Targets {
			out = binary.BigEndian.AppendUint32(out, uint32(int32(t-pos)))
		}
		return out, nil
	case FmtLookupSwitch:
		out = append(out, byte(in.Op))
		for i := 0; i < 3-pos%4; i++ {
			out = append(out, 0)
		}
		out = binary.BigEndian.AppendUint32(out, uint32(int32(in.Default-pos)))
		out = binary.BigEndian.AppendUint32(out, uint32(int32(len(in.Keys))))
		for i, k := range in.Keys {
			out = binary.BigEndian.AppendUint32(out, uint32(k))
			out = binary.BigEndian.AppendUint32(out, uint32(int32(in.Targets[i]-pos)))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("bytecode: cannot encode %s", in.Op)
	}
}

// Check decodes code and validates that every branch and switch target
// lands on an instruction boundary.
func Check(code []byte) error {
	insns, err := Decode(code)
	if err != nil {
		return err
	}
	starts := make(map[int]bool, len(insns))
	for i := range insns {
		starts[insns[i].Offset] = true
	}
	ck := func(t int) error {
		if !starts[t] {
			return fmt.Errorf("bytecode: branch target %d is not an instruction boundary", t)
		}
		return nil
	}
	for i := range insns {
		in := &insns[i]
		switch FormatOf(in.Op) {
		case FmtBranch2, FmtBranch4:
			if err := ck(in.A); err != nil {
				return err
			}
		case FmtTableSwitch, FmtLookupSwitch:
			if err := ck(in.Default); err != nil {
				return err
			}
			for _, t := range in.Targets {
				if err := ck(t); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
