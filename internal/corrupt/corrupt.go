// Package corrupt defines the structured decode-error taxonomy shared by
// every decoder in the unpack stack. A *Error pinpoints which named
// stream (or container section) a malformed archive broke in, the byte
// offset within that stream where decoding failed, and the underlying
// cause.
//
// The rule the decode stack follows: any invariant that can be violated
// by bytes an attacker controls fails with a *Error (or an error wrapping
// one), never a panic and never an unbounded allocation. Panics remain
// only for encoder-side programmer errors, which decoded data cannot
// reach.
package corrupt

import (
	"errors"
	"fmt"
)

// ErrTooLarge is the sentinel wrapped by errors produced when decoding
// would exceed a configured resource cap (MaxDecodedBytes,
// MaxClassCount, or a structural per-item limit). Callers distinguish
// "malformed" from "well-formed but over budget" with errors.Is.
var ErrTooLarge = errors.New("decoded size exceeds configured limit")

// Error describes malformed or hostile archive data. Stream names the
// wire stream or container section being decoded ("container" for the
// stream directory itself, "classfile" for raw class files); Offset is
// the byte position within that stream at the point of failure, or -1
// when no meaningful offset exists.
type Error struct {
	Stream string
	Offset int64
	Cause  error
}

// Error implements error.
func (e *Error) Error() string {
	where := e.Stream
	if where == "" {
		where = "input"
	}
	if e.Offset >= 0 {
		return fmt.Sprintf("corrupt %s at offset %d: %v", where, e.Offset, e.Cause)
	}
	return fmt.Sprintf("corrupt %s: %v", where, e.Cause)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Cause }

// New wraps cause as an Error located in the named stream.
func New(stream string, offset int64, cause error) *Error {
	return &Error{Stream: stream, Offset: offset, Cause: cause}
}

// Errorf formats a cause in place.
func Errorf(stream string, offset int64, format string, args ...any) *Error {
	return &Error{Stream: stream, Offset: offset, Cause: fmt.Errorf(format, args...)}
}

// TooLarge builds a resource-cap Error whose cause wraps ErrTooLarge.
func TooLarge(stream string, offset int64, format string, args ...any) *Error {
	return &Error{Stream: stream, Offset: offset,
		Cause: fmt.Errorf(format+": %w", append(args, ErrTooLarge)...)}
}

// As extracts the first *Error in err's chain, if any.
func As(err error) (*Error, bool) {
	var ce *Error
	if errors.As(err, &ce) {
		return ce, true
	}
	return nil, false
}
