package ir

import (
	"testing"

	"classpack/internal/classfile"
)

func TestClassKeyRoundTrip(t *testing.T) {
	cases := []string{
		"java/lang/String",
		"Main",
		"[I",
		"[[Ljava/util/List;",
		"[[[D",
		"a/b/c/D$E",
	}
	for _, name := range cases {
		k, err := ClassNameToKey(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if got := KeyToClassName(k); got != name {
			t.Errorf("roundtrip %q -> %+v -> %q", name, k, got)
		}
	}
	if _, err := ClassNameToKey(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := ClassNameToKey("[bogus"); err == nil {
		t.Error("bad array name accepted")
	}
}

func TestFactoring(t *testing.T) {
	k, err := ClassNameToKey("java/lang/String")
	if err != nil {
		t.Fatal(err)
	}
	if k.Pkg != "java/lang" || k.Simple != "String" {
		t.Fatalf("key = %+v", k)
	}
	k2, _ := ClassNameToKey("java/lang/Object")
	if k.Pkg != k2.Pkg {
		t.Fatal("same-package classes have different Pkg strings")
	}
}

func TestSignatureRoundTrip(t *testing.T) {
	cases := []string{
		"()V",
		"(Ljava/lang/String;)Ljava/lang/String;",
		"(IJ[B[[Ljava/util/Map;DF)Z",
		"()[I",
	}
	for _, desc := range cases {
		sig, err := DescriptorToSignature(desc)
		if err != nil {
			t.Fatalf("%q: %v", desc, err)
		}
		if got := SignatureToDescriptor(sig); got != desc {
			t.Errorf("roundtrip %q -> %q", desc, got)
		}
	}
}

func TestSignatureReturnFirst(t *testing.T) {
	sig, err := DescriptorToSignature("(I)Ljava/lang/String;")
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != 2 {
		t.Fatalf("len = %d", len(sig))
	}
	if sig[0].Simple != "String" || sig[1].Prim != 'I' {
		t.Fatalf("sig = %v", sig)
	}
}

func TestArgSlots(t *testing.T) {
	cases := map[string]int{
		"()V":      0,
		"(I)V":     1,
		"(IJ)V":    3,
		"(DD[I)V":  5,
		"(JDLx;)V": 5,
	}
	for desc, want := range cases {
		sig, err := DescriptorToSignature(desc)
		if err != nil {
			t.Fatal(err)
		}
		if got := sig.ArgSlots(); got != want {
			t.Errorf("%q: ArgSlots = %d, want %d", desc, got, want)
		}
	}
}

func TestSigStringDistinguishes(t *testing.T) {
	a, _ := DescriptorToSignature("(I)V")
	b, _ := DescriptorToSignature("(J)V")
	c, _ := DescriptorToSignature("([I)V")
	d, _ := DescriptorToSignature("(I)I")
	seen := map[string]bool{}
	for _, sig := range []Signature{a, b, c, d} {
		s := sig.SigString()
		if seen[s] {
			t.Fatalf("SigString collision: %q", s)
		}
		seen[s] = true
	}
	a2, _ := DescriptorToSignature("(I)V")
	if a.SigString() != a2.SigString() {
		t.Fatal("equal signatures produce different SigStrings")
	}
}

func TestResolvers(t *testing.T) {
	b := classfile.NewBuilder("p/q/C", "java/lang/Object", classfile.AccPublic)
	mIdx := b.Methodref("java/util/List", "get", "(I)Ljava/lang/Object;")
	fIdx := b.Fieldref("p/q/C", "count", "I")
	aIdx := b.Class("[Ljava/lang/String;")
	cf, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	m, err := ResolveMember(cf, mIdx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Owner.Simple != "List" || m.Name != "get" {
		t.Fatalf("member = %+v", m)
	}
	sig, err := m.MethodSignature()
	if err != nil {
		t.Fatal(err)
	}
	if sig[0].Simple != "Object" {
		t.Fatalf("sig = %v", sig)
	}

	f, err := ResolveMember(cf, fIdx)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := f.FieldTypeKey()
	if err != nil {
		t.Fatal(err)
	}
	if ft.Prim != 'I' {
		t.Fatalf("field type = %+v", ft)
	}

	ak, err := ResolveClass(cf, aIdx)
	if err != nil {
		t.Fatal(err)
	}
	if ak.Dims != 1 || ak.Simple != "String" {
		t.Fatalf("array class = %+v", ak)
	}

	if _, err := ResolveClass(cf, mIdx); err == nil {
		t.Error("ResolveClass accepted a Methodref")
	}
	if _, err := ResolveMember(cf, aIdx); err == nil {
		t.Error("ResolveMember accepted a Class")
	}
	if _, err := ResolveMember(cf, 9999); err == nil {
		t.Error("ResolveMember accepted out-of-range index")
	}
}
