// Package ir defines the restructured representation of §4 of the paper
// (Figure 1): class names factored into a package name and a simple name,
// member types factored into arrays of class references, and primitive and
// array types encoded as special class references. The packer encodes
// references to these values through per-kind move-to-front pools; the
// unpacker converts them back into constant-pool entries.
package ir

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"

	"classpack/internal/classfile"
)

// ClassKey identifies a class, primitive, or array type in factored form.
// For class types Prim is 0 and Pkg/Simple carry the factored binary name.
// For primitives Prim is the descriptor character. Dims counts array
// dimensions on top of the element type.
type ClassKey struct {
	Dims   int
	Prim   byte
	Pkg    string
	Simple string
}

// IsClass reports whether the element type is a class (not a primitive).
func (k ClassKey) IsClass() bool { return k.Prim == 0 }

// Zero reports whether k is the zero key (used for "no superclass").
func (k ClassKey) Zero() bool { return k == ClassKey{} }

// String renders the key for diagnostics.
func (k ClassKey) String() string {
	base := k.Simple
	if k.Pkg != "" {
		base = k.Pkg + "/" + k.Simple
	}
	if !k.IsClass() {
		base = string(k.Prim)
	}
	return strings.Repeat("[", k.Dims) + base
}

// TypeToKey converts a parsed descriptor type to its factored key.
func TypeToKey(t classfile.Type) ClassKey {
	k := ClassKey{Dims: t.Dims}
	if t.Base == 'L' {
		k.Pkg, k.Simple = classfile.SplitClassName(t.Name)
	} else {
		k.Prim = t.Base
	}
	return k
}

// KeyToType is the inverse of TypeToKey.
func KeyToType(k ClassKey) classfile.Type {
	if k.IsClass() {
		return classfile.Type{Dims: k.Dims, Base: 'L', Name: classfile.JoinClassName(k.Pkg, k.Simple)}
	}
	return classfile.Type{Dims: k.Dims, Base: k.Prim}
}

// ClassNameToKey converts a Class constant's binary name — which may be an
// array descriptor such as "[Ljava/lang/String;" — to a key.
func ClassNameToKey(binary string) (ClassKey, error) {
	if strings.HasPrefix(binary, "[") {
		t, err := classfile.ParseFieldDescriptor(binary)
		if err != nil {
			return ClassKey{}, fmt.Errorf("ir: array class name %q: %w", binary, err)
		}
		return TypeToKey(t), nil
	}
	if binary == "" {
		return ClassKey{}, fmt.Errorf("ir: empty class name")
	}
	pkg, simple := classfile.SplitClassName(binary)
	return ClassKey{Pkg: pkg, Simple: simple}, nil
}

// KeyToClassName is the inverse of ClassNameToKey.
func KeyToClassName(k ClassKey) string {
	if k.Dims > 0 || !k.IsClass() {
		return KeyToType(k).String()
	}
	return classfile.JoinClassName(k.Pkg, k.Simple)
}

// Signature is a method type in factored form: the return type followed by
// the parameter types (§4: "an array of classes containing the return type
// and the argument types").
type Signature []ClassKey

// DescriptorToSignature factors a method descriptor.
func DescriptorToSignature(desc string) (Signature, error) {
	params, ret, err := classfile.ParseMethodDescriptor(desc)
	if err != nil {
		return nil, err
	}
	sig := make(Signature, 0, len(params)+1)
	sig = append(sig, TypeToKey(ret))
	for _, p := range params {
		sig = append(sig, TypeToKey(p))
	}
	return sig, nil
}

// SignatureToDescriptor is the inverse of DescriptorToSignature.
func SignatureToDescriptor(sig Signature) string {
	params := make([]classfile.Type, 0, len(sig)-1)
	for _, k := range sig[1:] {
		params = append(params, KeyToType(k))
	}
	return classfile.MethodDescriptor(params, KeyToType(sig[0]))
}

// ArgSlots returns the number of argument slots the signature consumes,
// excluding any receiver (used for invokeinterface counts).
func (sig Signature) ArgSlots() int {
	n := 0
	for _, k := range sig[1:] {
		n += KeyToType(k).Slots()
	}
	return n
}

// MemberRef is a factored field or method reference.
type MemberRef struct {
	Kind  classfile.ConstKind // Fieldref, Methodref or InterfaceMethodref
	Owner ClassKey
	Name  string
	Desc  string // original descriptor; factored forms derive from it
}

// FieldTypeKey returns the factored type of a field reference.
func (m MemberRef) FieldTypeKey() (ClassKey, error) {
	t, err := classfile.ParseFieldDescriptor(m.Desc)
	if err != nil {
		return ClassKey{}, err
	}
	return TypeToKey(t), nil
}

// MethodSignature returns the factored signature of a method reference.
func (m MemberRef) MethodSignature() (Signature, error) {
	return DescriptorToSignature(m.Desc)
}

// ResolveClass resolves a Class constant-pool entry to its key.
func ResolveClass(cf *classfile.ClassFile, idx uint16) (ClassKey, error) {
	if int(idx) >= len(cf.Pool) || cf.Pool[idx].Kind != classfile.KindClass {
		return ClassKey{}, fmt.Errorf("ir: index %d is not a Class constant", idx)
	}
	return ClassNameToKey(cf.Utf8At(cf.Pool[idx].Name))
}

// ResolveMember resolves a Fieldref/Methodref/InterfaceMethodref entry.
func ResolveMember(cf *classfile.ClassFile, idx uint16) (MemberRef, error) {
	if int(idx) >= len(cf.Pool) {
		return MemberRef{}, fmt.Errorf("ir: member index %d out of range", idx)
	}
	c := &cf.Pool[idx]
	switch c.Kind {
	case classfile.KindFieldref, classfile.KindMethodref, classfile.KindInterfaceMethodref:
	default:
		return MemberRef{}, fmt.Errorf("ir: index %d is %v, not a member ref", idx, c.Kind)
	}
	owner, err := ResolveClass(cf, c.Class)
	if err != nil {
		return MemberRef{}, err
	}
	if int(c.NameAndType) >= len(cf.Pool) || cf.Pool[c.NameAndType].Kind != classfile.KindNameAndType {
		return MemberRef{}, fmt.Errorf("ir: member %d has bad NameAndType", idx)
	}
	nat := &cf.Pool[c.NameAndType]
	return MemberRef{
		Kind:  c.Kind,
		Owner: owner,
		Name:  cf.Utf8At(nat.Name),
		Desc:  cf.Utf8At(nat.Desc),
	}, nil
}

// SigString is a canonical comparable form of a signature, usable as a
// map key for move-to-front pools.
func (sig Signature) SigString() string {
	return string(sig.AppendSigString(nil))
}

// AppendSigString appends SigString's bytes to dst, for callers that
// reuse a scratch buffer. Each key renders as "<dims><prim+1><pkg>/<simple>;"
// with prim+1 encoded as a rune (these are move-to-front pool identities,
// so the bytes must never drift).
func (sig Signature) AppendSigString(dst []byte) []byte {
	for _, k := range sig {
		dst = strconv.AppendInt(dst, int64(k.Dims), 10)
		dst = utf8.AppendRune(dst, rune(k.Prim+1))
		dst = append(dst, k.Pkg...)
		dst = append(dst, '/')
		dst = append(dst, k.Simple...)
		dst = append(dst, ';')
	}
	return dst
}
