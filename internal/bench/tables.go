package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"classpack/internal/archive"
	"classpack/internal/bytecode"
	"classpack/internal/classfile"
	"classpack/internal/core"
	"classpack/internal/custom"
	"classpack/internal/encoding/arith"
	"classpack/internal/refs"
	"classpack/internal/synth"
)

// T1Row is one Table 1 row: corpus sizes under the baseline packagings.
type T1Row struct {
	Name                    string
	SJ0R, Jar, SJar, SJ0RGz int
	Description             string
}

// Table1 computes the Table 1 rows for every corpus.
func Table1(scale float64) ([]T1Row, error) {
	var rows []T1Row
	for _, name := range Names() {
		c, err := Load(name, scale)
		if err != nil {
			return nil, err
		}
		row := T1Row{Name: name, Description: synth.Description(name)}
		if row.SJ0R, err = c.SJ0R(); err != nil {
			return nil, err
		}
		if row.Jar, err = c.Jar(); err != nil {
			return nil, err
		}
		if row.SJar, err = c.SJar(); err != nil {
			return nil, err
		}
		if row.SJ0RGz, err = c.SJ0RGz(); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// T2 is the Table 2 classfile breakdown for selected benchmarks.
type T2 struct {
	Benchmarks []string
	Rows       []T2Row
}

// T2Row is one component with per-benchmark byte counts.
type T2Row struct {
	Label string
	Bytes []int
}

// Table2 computes the classfile breakdown (field definitions, method
// definitions, code arrays, constant pool, Utf8 — plus the shared and
// shared-and-factored Utf8 totals) for the paper's two example benchmarks.
func Table2(scale float64, benchmarks ...string) (*T2, error) {
	if len(benchmarks) == 0 {
		benchmarks = []string{"swingall", "213_javac"}
	}
	t := &T2{Benchmarks: benchmarks}
	labels := []string{
		"Total classfile bytes", "Field definitions", "Method definitions",
		"Code arrays", "other constant pool", "Utf8 entries",
		"Utf8 if shared", "Utf8 if shared & factored",
	}
	cols := make([][]int, len(benchmarks))
	for i, name := range benchmarks {
		c, err := Load(name, scale)
		if err != nil {
			return nil, err
		}
		b, err := breakdown(c.Stripped)
		if err != nil {
			return nil, err
		}
		cols[i] = []int{b.total, b.fieldDefs, b.methodDefs, b.code, b.otherCP,
			b.utf8, b.utf8Shared, b.utf8Factored}
	}
	for ri, label := range labels {
		row := T2Row{Label: label}
		for _, col := range cols {
			row.Bytes = append(row.Bytes, col[ri])
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

type breakdownResult struct {
	total, fieldDefs, methodDefs, code, otherCP, utf8 int
	utf8Shared, utf8Factored                          int
}

func attrBodySize(a classfile.Attribute) int {
	switch a := a.(type) {
	case *classfile.ConstantValueAttr:
		return 2
	case *classfile.SyntheticAttr, *classfile.DeprecatedAttr:
		return 0
	case *classfile.ExceptionsAttr:
		return 2 + 2*len(a.Classes)
	case *classfile.InnerClassesAttr:
		return 2 + 8*len(a.Entries)
	case *classfile.SourceFileAttr:
		return 2
	default:
		return 0
	}
}

// breakdown computes the Table 2 components; the first six must sum to the
// serialized size (asserted by tests).
func breakdown(cfs []*classfile.ClassFile) (breakdownResult, error) {
	var b breakdownResult
	shared := map[string]bool{}
	factored := map[string]bool{}
	for _, cf := range cfs {
		data, err := classfile.Write(cf)
		if err != nil {
			return b, err
		}
		b.total += len(data)
		for i := 1; i < len(cf.Pool); i++ {
			c := &cf.Pool[i]
			switch c.Kind {
			case classfile.KindUtf8:
				b.utf8 += 3 + len(classfile.EncodeModifiedUTF8(c.Utf8))
				shared[c.Utf8] = true
			case classfile.KindInteger, classfile.KindFloat:
				b.otherCP += 5
			case classfile.KindLong, classfile.KindDouble:
				b.otherCP += 9
				i++
			case classfile.KindClass, classfile.KindString:
				b.otherCP += 3
			case classfile.KindNameAndType, classfile.KindFieldref,
				classfile.KindMethodref, classfile.KindInterfaceMethodref:
				b.otherCP += 5
			}
		}
		collectFactored(cf, factored)
		for fi := range cf.Fields {
			f := &cf.Fields[fi]
			b.fieldDefs += 8
			for _, a := range f.Attrs {
				b.fieldDefs += 6 + attrBodySize(a)
			}
		}
		for mi := range cf.Methods {
			m := &cf.Methods[mi]
			b.methodDefs += 8
			for _, a := range m.Attrs {
				if code, ok := a.(*classfile.CodeAttr); ok {
					// Code attribute minus the code array itself.
					b.methodDefs += 6 + 12 + 8*len(code.Handlers)
					for _, ia := range code.Attrs {
						b.methodDefs += 6 + attrBodySize(ia)
					}
					b.code += len(code.Code)
					continue
				}
				b.methodDefs += 6 + attrBodySize(a)
			}
		}
	}
	for s := range shared {
		b.utf8Shared += 3 + len(classfile.EncodeModifiedUTF8(s))
	}
	for s := range factored {
		b.utf8Factored += 2 + len(classfile.EncodeModifiedUTF8(s))
	}
	return b, nil
}

// collectFactored gathers the atomic strings left after the §4 factoring:
// package names, simple class names, member names, and string constants.
func collectFactored(cf *classfile.ClassFile, atoms map[string]bool) {
	addType := func(t classfile.Type) {
		if t.Base == 'L' {
			pkg, simple := classfile.SplitClassName(t.Name)
			atoms[pkg] = true
			atoms[simple] = true
		}
	}
	addDesc := func(desc string) {
		if strings.HasPrefix(desc, "(") {
			params, ret, err := classfile.ParseMethodDescriptor(desc)
			if err != nil {
				return
			}
			addType(ret)
			for _, p := range params {
				addType(p)
			}
			return
		}
		if t, err := classfile.ParseFieldDescriptor(desc); err == nil {
			addType(t)
		}
	}
	for i := 1; i < len(cf.Pool); i++ {
		c := &cf.Pool[i]
		switch c.Kind {
		case classfile.KindClass:
			name := cf.Utf8At(c.Name)
			if strings.HasPrefix(name, "[") {
				addDesc(name)
			} else {
				pkg, simple := classfile.SplitClassName(name)
				atoms[pkg] = true
				atoms[simple] = true
			}
		case classfile.KindString:
			atoms[cf.Utf8At(c.Str)] = true
		case classfile.KindNameAndType:
			atoms[cf.Utf8At(c.Name)] = true
			addDesc(cf.Utf8At(c.Desc))
		}
		if c.Kind.Wide() {
			i++
		}
	}
	for fi := range cf.Fields {
		atoms[cf.MemberName(&cf.Fields[fi])] = true
		addDesc(cf.MemberDesc(&cf.Fields[fi]))
	}
	for mi := range cf.Methods {
		atoms[cf.MemberName(&cf.Methods[mi])] = true
		addDesc(cf.MemberDesc(&cf.Methods[mi]))
	}
}

// T3Row is one Table 3 row: compressed reference bytes under each scheme.
type T3Row struct {
	Name  string
	Sizes []int // indexed by T3Schemes order
}

// T3Schemes lists the Table 3 columns in the paper's order.
func T3Schemes() []refs.Scheme {
	return []refs.Scheme{refs.Simple, refs.Basic, refs.Freq, refs.Cache,
		refs.MTFBasic, refs.MTFTransients, refs.MTFContext, refs.MTFFull}
}

// Table3 measures the compressed size of all reference streams under each
// §5.1 scheme for every corpus.
func Table3(scale float64) ([]T3Row, error) {
	var rows []T3Row
	for _, name := range Names() {
		c, err := Load(name, scale)
		if err != nil {
			return nil, err
		}
		traces, err := core.Traces(c.Stripped, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		row := T3Row{Name: name}
		for _, scheme := range T3Schemes() {
			row.Sizes = append(row.Sizes, measureScheme(scheme, traces))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// measureScheme encodes every pool's trace under a scheme and totals the
// DEFLATE-compressed stream sizes. Simple merges the per-kind method and
// field pools, per §5.1.1.
func measureScheme(scheme refs.Scheme, traces map[string][]refs.Event) int {
	groups := map[string][]refs.Event{}
	var poolNames []string
	for pool := range traces {
		poolNames = append(poolNames, pool)
	}
	sort.Strings(poolNames)
	for _, pool := range poolNames {
		group := pool
		if scheme == refs.Simple {
			switch {
			case strings.HasPrefix(pool, "meth."):
				group = "meth"
			case strings.HasPrefix(pool, "field."):
				group = "field"
			}
		}
		groups[group] = append(groups[group], traces[pool]...)
	}
	var groupNames []string
	for g := range groups {
		groupNames = append(groupNames, g)
	}
	sort.Strings(groupNames)
	total := 0
	for _, g := range groupNames {
		events := groups[g]
		enc := refs.NewEncoder(scheme, refs.CountKeys(events))
		var buf []byte
		for _, ev := range events {
			buf, _ = enc.Encode(buf, ev)
		}
		if len(buf) > 0 {
			total += archive.FlateSize(buf)
		}
	}
	return total
}

// T4 holds Table 4: compression ratios (compressed/original, percent) for
// bytecode components, per benchmark.
type T4 struct {
	Benchmarks []string
	Rows       []T4Row
}

// T4Row is one component's percentages per benchmark.
type T4Row struct {
	Label string
	Pct   []float64
}

// Table4 computes bytecode-component compression for the paper's two
// example benchmarks.
func Table4(scale float64, benchmarks ...string) (*T4, error) {
	if len(benchmarks) == 0 {
		benchmarks = []string{"213_javac", "222_mpegaudio"}
	}
	t := &T4{Benchmarks: benchmarks}
	labels := []string{"Bytestream", "Opcodes", "using Stack State",
		"using Custom opcodes", "Register numbers", "Branch offsets", "Method references"}
	cols := make([][]float64, len(benchmarks))
	for i, name := range benchmarks {
		c, err := Load(name, scale)
		if err != nil {
			return nil, err
		}
		col, err := bytecodeComponents(c)
		if err != nil {
			return nil, err
		}
		cols[i] = col
	}
	for ri, label := range labels {
		row := T4Row{Label: label}
		for _, col := range cols {
			row.Pct = append(row.Pct, col[ri])
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

func bytecodeComponents(c *Corpus) ([]float64, error) {
	// Raw bytestream: all code arrays concatenated.
	var allCode []byte
	var opcodeSeqs [][]byte
	for _, cf := range c.Stripped {
		for mi := range cf.Methods {
			code := classfile.CodeOf(&cf.Methods[mi])
			if code == nil {
				continue
			}
			allCode = append(allCode, code.Code...)
			insns, err := bytecode.Decode(code.Code)
			if err != nil {
				return nil, err
			}
			seq := make([]byte, len(insns))
			for i := range insns {
				seq[i] = byte(insns[i].Op)
			}
			opcodeSeqs = append(opcodeSeqs, seq)
		}
	}
	bytestream := pct(archive.FlateSize(allCode), len(allCode))

	noSS := core.Options{Scheme: refs.MTFFull, StackState: false, Compress: true}
	plainStats, err := core.PackStats(c.Stripped, noSS)
	if err != nil {
		return nil, err
	}
	ssStats, err := core.PackStats(c.Stripped, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	statPct := func(stats map[string][2]int, key string) float64 {
		s := stats[key]
		return pct(s[1], s[0])
	}
	opcodes := statPct(plainStats, "ops.code")
	withSS := statPct(ssStats, "ops.code")

	// Custom opcodes (§7.2): rewrite opcode streams, DEFLATE the result
	// (dictionary included), compare against the raw opcode count.
	rewritten, dict := custom.Compress(opcodeSeqs, 256, 128)
	var customCat []byte
	for _, seq := range rewritten {
		customCat = append(customCat, custom.Serialize(seq)...)
	}
	rawOps := 0
	for _, seq := range opcodeSeqs {
		rawOps += len(seq)
	}
	customBytes := archive.FlateSize(customCat) + 3*len(dict)
	customPct := pct(customBytes, rawOps)

	regs := statPct(ssStats, "msc.reg")
	branch := statPct(ssStats, "msc.branch")
	mrefRaw, mrefEnc := 0, 0
	for key, s := range ssStats {
		if strings.HasPrefix(key, "ref.meth.") {
			mrefRaw += s[0]
			mrefEnc += s[1]
		}
	}
	return []float64{bytestream, opcodes, withSS, customPct, regs, branch,
		pct(mrefEnc, mrefRaw)}, nil
}

// T5 holds Table 5: packing ablations as a percent of the sjar size.
type T5 struct {
	Benchmarks []string
	Rows       []T5Row
}

// T5Row is one packing option's percentages.
type T5Row struct {
	Label string
	Pct   []float64
}

// Table5 computes the separate-packing and no-gzip ablations.
func Table5(scale float64, benchmarks ...string) (*T5, error) {
	if len(benchmarks) == 0 {
		benchmarks = []string{"213_javac", "222_mpegaudio"}
	}
	t := &T5{Benchmarks: benchmarks}
	labels := []string{"Standard", "Packed Separately", "Not gzip'd",
		"Packed Separately and not gzip'd"}
	cols := make([][]float64, len(benchmarks))
	for i, name := range benchmarks {
		c, err := Load(name, scale)
		if err != nil {
			return nil, err
		}
		sjar, err := c.SJar()
		if err != nil {
			return nil, err
		}
		std := core.DefaultOptions()
		noGz := std
		noGz.Compress = false
		sizes := make([]int, 4)
		if sizes[0], err = c.PackedSize(std); err != nil {
			return nil, err
		}
		if sizes[1], err = c.PackedSeparately(std); err != nil {
			return nil, err
		}
		if sizes[2], err = c.PackedSize(noGz); err != nil {
			return nil, err
		}
		if sizes[3], err = c.PackedSeparately(noGz); err != nil {
			return nil, err
		}
		col := make([]float64, 4)
		for j, s := range sizes {
			col[j] = pct(s, sjar)
		}
		cols[i] = col
	}
	for ri, label := range labels {
		row := T5Row{Label: label}
		for _, col := range cols {
			row.Pct = append(row.Pct, col[ri])
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// T6Row is one Table 6 row: archive sizes, ratios, and the packed-stream
// category breakdown.
type T6Row struct {
	Name                     string
	Jar, J0RGz, Jazz, Packed int
	// Category percentages of the packed archive: Strings, Opcodes, Ints,
	// Refs, Misc.
	Strings, Opcodes, Ints, Refs, Misc float64
}

// Table6 computes the main compression-ratio table over every corpus.
func Table6(scale float64) ([]T6Row, error) {
	var rows []T6Row
	for _, name := range Names() {
		c, err := Load(name, scale)
		if err != nil {
			return nil, err
		}
		row := T6Row{Name: name}
		if row.Jar, err = c.SJar(); err != nil {
			return nil, err
		}
		if row.J0RGz, err = c.SJ0RGz(); err != nil {
			return nil, err
		}
		if row.Jazz, err = c.JazzSize(); err != nil {
			return nil, err
		}
		if row.Packed, err = c.PackedSize(core.DefaultOptions()); err != nil {
			return nil, err
		}
		stats, err := core.PackStats(c.Stripped, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		cat := map[string]int{}
		total := 0
		for key, s := range stats {
			cat[key[:3]] += s[1]
			total += s[1]
		}
		row.Strings = pct(cat["str"], total)
		row.Opcodes = pct(cat["ops"], total)
		row.Ints = pct(cat["int"], total)
		row.Refs = pct(cat["ref"], total)
		row.Misc = pct(cat["msc"], total)
		rows = append(rows, row)
	}
	// The paper orders Table 6 by jar size ascending.
	sort.Slice(rows, func(i, j int) bool { return rows[i].Jar < rows[j].Jar })
	return rows, nil
}

// T7Row is one Table 7 row: compression and decompression wall times.
type T7Row struct {
	Name           string
	CompressSecs   float64
	DecompressSecs float64
	KBPerSec       float64 // wire-format KB decompressed per second
}

// Table7 times the compressor and decompressor on every corpus.
func Table7(scale float64) ([]T7Row, error) {
	var rows []T7Row
	for _, name := range Names() {
		c, err := Load(name, scale)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		packed, err := core.Pack(c.Stripped, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		compSecs := time.Since(start).Seconds()
		start = time.Now()
		if _, err := core.Unpack(packed); err != nil {
			return nil, err
		}
		decompSecs := time.Since(start).Seconds()
		kbps := 0.0
		if decompSecs > 0 {
			kbps = float64(len(packed)) / 1024 / decompSecs
		}
		rows = append(rows, T7Row{Name: name, CompressSecs: compSecs,
			DecompressSecs: decompSecs, KBPerSec: kbps})
	}
	return rows, nil
}

// T8Row is one Table 8 row: a related-work compression range as a percent
// of gzip'd classfiles.
type T8Row struct {
	System   string
	Lo, Hi   float64
	Measured bool // computed here rather than quoted from the paper
}

// Table8 reproduces the related-work comparison: quoted ranges from the
// paper plus this implementation's measured range over corpora larger
// than 10K bytes.
func Table8(scale float64) ([]T8Row, error) {
	rows := []T8Row{
		{System: "Slim Binaries [KF97]", Lo: 59, Hi: 59},
		{System: "JShrink, DashO, and Jax", Lo: 65, Hi: 83},
		{System: "jar.gz format (2.1)", Lo: 55, Hi: 85},
		{System: "Clazz format [HC98]", Lo: 52, Hi: 90},
		{System: "Jazz format [BHV98]", Lo: 40, Hi: 70},
	}
	lo, hi := 1000.0, 0.0
	t6, err := Table6(scale)
	if err != nil {
		return nil, err
	}
	for _, r := range t6 {
		if r.Jar <= 10*1024 {
			continue
		}
		p := pct(r.Packed, r.Jar)
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	rows = append(rows, T8Row{System: "This paper (programs > 10K)", Lo: lo, Hi: hi, Measured: true})
	return rows, nil
}

// Fig2Row is one point series entry of Figure 2: archive formats as a
// percent of the jar size, against jar size.
type Fig2Row struct {
	Name                string
	JarKB               float64
	J0RGz, Jazz, Packed float64 // percent of jar
}

// Figure2 computes the scatter series behind Figure 2.
func Figure2(scale float64) ([]Fig2Row, error) {
	t6, err := Table6(scale)
	if err != nil {
		return nil, err
	}
	var rows []Fig2Row
	for _, r := range t6 {
		rows = append(rows, Fig2Row{
			Name:   r.Name,
			JarKB:  float64(r.Jar) / 1024,
			J0RGz:  pct(r.J0RGz, r.Jar),
			Jazz:   pct(r.Jazz, r.Jar),
			Packed: pct(r.Packed, r.Jar),
		})
	}
	return rows, nil
}

// ArithVsFlate reproduces the §5 experiment: the move-to-front index
// stream for virtual method references coded with DEFLATE versus an
// adaptive arithmetic coder. The paper found zlib about 2% larger than
// arithmetic coding (before dictionary costs) and kept zlib.
func ArithVsFlate(scale float64, corpus string) (flateBytes, arithBytes int, err error) {
	c, err := Load(corpus, scale)
	if err != nil {
		return 0, 0, err
	}
	traces, err := core.Traces(c.Stripped, core.DefaultOptions())
	if err != nil {
		return 0, 0, err
	}
	events := traces["meth.v"]
	if len(events) == 0 {
		return 0, 0, fmt.Errorf("bench: no virtual method references in %s", corpus)
	}
	enc := refs.NewEncoder(refs.MTFBasic, nil)
	var stream []byte
	for _, ev := range events {
		stream, _ = enc.Encode(stream, ev)
	}
	flateBytes = archive.FlateSize(stream)
	syms := make([]int, len(stream))
	for i, b := range stream {
		syms[i] = int(b)
	}
	coded, err := arith.EncodeAll(256, syms)
	if err != nil {
		return 0, 0, err
	}
	return flateBytes, len(coded), nil
}

// must formats a percent for rendering.
func fmtPct(v float64) string { return fmt.Sprintf("%.0f%%", v) }
