// Package bench builds the benchmark corpora and computes every
// measurement behind the paper's Tables 1–8 and Figure 2. The cmd/benchtables
// binary and the repository's bench_test.go both drive this package.
package bench

import (
	"fmt"
	"sync"

	"classpack/internal/archive"
	"classpack/internal/classfile"
	"classpack/internal/core"
	"classpack/internal/jazz"
	"classpack/internal/strip"
	"classpack/internal/synth"
)

// Corpus is one generated benchmark with its as-distributed (debug-bearing)
// and stripped forms. After Load returns, a Corpus is immutable except
// for its internal measurement cache, and all methods are safe for
// concurrent use: each measurement key has its own once-guard, so two
// goroutines computing different tables over the same corpus never
// serialize against each other.
type Corpus struct {
	Name  string
	Scale float64

	// Unstripped holds the files as a compiler would distribute them.
	Unstripped []archive.File
	// Stripped holds the §2-canonicalized classfiles and their bytes.
	Stripped      []*classfile.ClassFile
	StrippedFiles []archive.File

	mu    sync.Mutex // guards the sizes map shape only, never computation
	sizes map[string]*sizeOnce
}

// sizeOnce is one memoized measurement; computation happens inside the
// once so concurrent callers of the same key block on each other but on
// nothing else.
type sizeOnce struct {
	once sync.Once
	v    int
	err  error
}

// corpusOnce is one cache slot; generation happens inside the once, so
// concurrent Loads of different corpora build in parallel while
// concurrent Loads of the same corpus share one build.
type corpusOnce struct {
	once sync.Once
	c    *Corpus
	err  error
}

var (
	cacheMu sync.Mutex // guards the cache map shape only, never generation
	cache   = map[string]*corpusOnce{}
)

// Names lists the benchmark corpora in the paper's Table 1 order.
func Names() []string {
	var out []string
	for _, p := range synth.Profiles() {
		out = append(out, p.Name)
	}
	return out
}

// Load builds (or returns the cached) corpus for a profile at a scale.
// It is safe for concurrent use: distinct corpora generate in parallel.
func Load(name string, scale float64) (*Corpus, error) {
	key := fmt.Sprintf("%s@%g", name, scale)
	cacheMu.Lock()
	e, ok := cache[key]
	if !ok {
		e = new(corpusOnce)
		cache[key] = e
	}
	cacheMu.Unlock()
	e.once.Do(func() { e.c, e.err = build(name, scale) })
	return e.c, e.err
}

// build generates one corpus; per-file canonicalization fans out over
// all cores.
func build(name string, scale float64) (*Corpus, error) {
	p, err := synth.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	cfs, err := synth.Generate(p, scale)
	if err != nil {
		return nil, err
	}
	c := &Corpus{Name: name, Scale: scale, sizes: map[string]*sizeOnce{}}
	for _, cf := range cfs {
		data, err := classfile.Write(cf)
		if err != nil {
			return nil, err
		}
		fname := cf.ThisClassName() + ".class"
		c.Unstripped = append(c.Unstripped, archive.File{Name: fname, Data: data})
	}
	if err := strip.ApplyAllN(cfs, strip.Options{}, 0); err != nil {
		return nil, err
	}
	c.Stripped = cfs
	for _, cf := range cfs {
		data, err := classfile.Write(cf)
		if err != nil {
			return nil, err
		}
		c.StrippedFiles = append(c.StrippedFiles, archive.File{Name: cf.ThisClassName() + ".class", Data: data})
	}
	return c, nil
}

// memo caches a size measurement under a key. The corpus lock is held
// only to find or insert the key's slot; the measurement itself runs
// under the slot's own once, so different keys compute concurrently.
func (c *Corpus) memo(key string, f func() (int, error)) (int, error) {
	c.mu.Lock()
	e, ok := c.sizes[key]
	if !ok {
		e = new(sizeOnce)
		c.sizes[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.v, e.err = f() })
	return e.v, e.err
}

// SJ0R is the stored (uncompressed) jar of stripped classfiles.
func (c *Corpus) SJ0R() (int, error) {
	return c.memo("sj0r", func() (int, error) {
		data, err := archive.WriteStored(c.StrippedFiles)
		return len(data), err
	})
}

// Jar is the per-file-deflate jar of the files as distributed (debug
// information not stripped) — Table 1's "jar" column.
func (c *Corpus) Jar() (int, error) {
	return c.memo("jar", func() (int, error) {
		data, err := archive.WriteJar(c.Unstripped)
		return len(data), err
	})
}

// SJar is the per-file-deflate jar of stripped classfiles.
func (c *Corpus) SJar() (int, error) {
	return c.memo("sjar", func() (int, error) {
		data, err := archive.WriteJar(c.StrippedFiles)
		return len(data), err
	})
}

// SJ0RGz is the whole-archive-gzip of the stored stripped jar (§2.1).
func (c *Corpus) SJ0RGz() (int, error) {
	return c.memo("sj0rgz", func() (int, error) {
		data, err := archive.WriteJ0rGz(c.StrippedFiles)
		return len(data), err
	})
}

// JazzSize is the Jazz-format archive size (§13.1 baseline).
func (c *Corpus) JazzSize() (int, error) {
	return c.memo("jazz", func() (int, error) {
		data, err := jazz.Pack(c.Stripped)
		return len(data), err
	})
}

// PackedSize is the archive size under this paper's format.
func (c *Corpus) PackedSize(opts core.Options) (int, error) {
	key := fmt.Sprintf("packed:%+v", opts)
	return c.memo(key, func() (int, error) {
		data, err := core.Pack(c.Stripped, opts)
		return len(data), err
	})
}

// PackedSeparately packs each classfile as its own archive and sums the
// sizes (the Table 5 ablation).
func (c *Corpus) PackedSeparately(opts core.Options) (int, error) {
	key := fmt.Sprintf("packedsep:%+v", opts)
	return c.memo(key, func() (int, error) {
		total := 0
		for _, cf := range c.Stripped {
			data, err := core.Pack([]*classfile.ClassFile{cf}, opts)
			if err != nil {
				return 0, err
			}
			total += len(data)
		}
		return total, nil
	})
}

// RawStrippedTotal is the total stripped classfile bytes (no container).
func (c *Corpus) RawStrippedTotal() int {
	total := 0
	for _, f := range c.StrippedFiles {
		total += len(f.Data)
	}
	return total
}
