package bench

import (
	"bytes"
	"strings"
	"testing"
)

// testScale keeps corpora small: the shapes under test hold at any scale.
const testScale = 0.02

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("got %d rows, want 19", len(rows))
	}
	for _, r := range rows {
		// The paper's orderings: stripping shrinks (sjar < jar), a
		// compressed jar beats the stored jar, and whole-archive gzip
		// beats per-file compression.
		if !(r.SJar < r.Jar) {
			t.Errorf("%s: sjar %d not below jar %d", r.Name, r.SJar, r.Jar)
		}
		if !(r.SJar < r.SJ0R) {
			t.Errorf("%s: sjar %d not below sj0r %d", r.Name, r.SJar, r.SJ0R)
		}
		if !(r.SJ0RGz < r.SJar) {
			t.Errorf("%s: sj0r.gz %d not below sjar %d", r.Name, r.SJ0RGz, r.SJar)
		}
	}
}

func TestTable2ComponentsSumToTotal(t *testing.T) {
	c, err := Load("Hanoi", testScale)
	if err != nil {
		t.Fatal(err)
	}
	b, err := breakdown(c.Stripped)
	if err != nil {
		t.Fatal(err)
	}
	// Components + per-class header bytes must equal the serialized total.
	headers := 0
	for _, cf := range c.Stripped {
		// magic(4) versions(4) poolcount(2) access/this/super(6)
		// ifacecount(2)+2*n fieldcount(2) methodcount(2) attrcount(2)
		headers += 24 + 2*len(cf.Interfaces)
		for _, a := range cf.Attrs {
			headers += 6 + attrBodySize(a)
		}
	}
	sum := b.fieldDefs + b.methodDefs + b.code + b.otherCP + b.utf8 + headers
	if sum != b.total {
		t.Fatalf("components sum to %d, total is %d (headers %d)", sum, b.total, headers)
	}
	// Sharing and factoring each shrink the string bytes (§3, Table 2).
	if !(b.utf8Shared < b.utf8) {
		t.Errorf("shared utf8 %d not below %d", b.utf8Shared, b.utf8)
	}
	if !(b.utf8Factored < b.utf8Shared) {
		t.Errorf("factored utf8 %d not below shared %d", b.utf8Factored, b.utf8Shared)
	}
	// Utf8 entries dominate the constant pool (§3).
	if !(b.utf8 > b.otherCP) {
		t.Errorf("utf8 %d does not dominate other CP %d", b.utf8, b.otherCP)
	}
}

func TestTable3SchemeOrdering(t *testing.T) {
	rows, err := Table3(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("got %d rows", len(rows))
	}
	schemes := T3Schemes()
	idx := func(name string) int {
		for i, s := range schemes {
			if s.String() == name {
				return i
			}
		}
		t.Fatalf("no scheme %s", name)
		return -1
	}
	simple, basic, mtf := idx("Simple"), idx("Basic"), idx("MTF Basic")
	better := 0
	for _, r := range rows {
		if r.Sizes[basic] < r.Sizes[simple] {
			better++
		}
		if r.Sizes[mtf] >= r.Sizes[simple] {
			t.Errorf("%s: MTF %d not below Simple %d", r.Name, r.Sizes[mtf], r.Sizes[simple])
		}
	}
	// Basic beats Simple on at least the vast majority of corpora.
	if better < len(rows)*3/4 {
		t.Errorf("Basic beat Simple on only %d/%d corpora", better, len(rows))
	}
}

func TestTable4Shape(t *testing.T) {
	t4, err := Table4(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 7 {
		t.Fatalf("got %d rows", len(t4.Rows))
	}
	get := func(label string) []float64 {
		for _, r := range t4.Rows {
			if r.Label == label {
				return r.Pct
			}
		}
		t.Fatalf("no row %s", label)
		return nil
	}
	for col := range t4.Benchmarks {
		// Separated opcodes compress better than the raw bytestream (§7).
		if !(get("Opcodes")[col] < get("Bytestream")[col]) {
			t.Errorf("%s: opcodes %.1f%% not better than bytestream %.1f%%",
				t4.Benchmarks[col], get("Opcodes")[col], get("Bytestream")[col])
		}
		// Stack-state collapsing helps (or at least does not hurt much).
		if get("using Stack State")[col] > get("Opcodes")[col]*1.05 {
			t.Errorf("%s: stack state made opcodes worse: %.1f%% vs %.1f%%",
				t4.Benchmarks[col], get("using Stack State")[col], get("Opcodes")[col])
		}
		for _, r := range t4.Rows {
			if r.Pct[col] <= 0 || r.Pct[col] > 150 {
				t.Errorf("%s/%s: implausible percentage %.1f", t4.Benchmarks[col], r.Label, r.Pct[col])
			}
		}
	}
}

func TestTable5Shape(t *testing.T) {
	t5, err := Table5(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for col := range t5.Benchmarks {
		std := t5.Rows[0].Pct[col]
		sep := t5.Rows[1].Pct[col]
		noGz := t5.Rows[2].Pct[col]
		both := t5.Rows[3].Pct[col]
		if !(std <= sep) {
			t.Errorf("%s: standard %.0f%% above packed-separately %.0f%%",
				t5.Benchmarks[col], std, sep)
		}
		if !(std < noGz) {
			t.Errorf("%s: standard %.0f%% not below not-gzip'd %.0f%%",
				t5.Benchmarks[col], std, noGz)
		}
		if !(both >= sep && both >= noGz) {
			t.Errorf("%s: both ablations %.0f%% not the worst", t5.Benchmarks[col], both)
		}
	}
}

func TestTable6Shape(t *testing.T) {
	rows, err := Table6(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The paper's headline: Packed < Jazz and Packed < j0r.gz < jar.
		if !(r.Packed < r.J0RGz) {
			t.Errorf("%s: packed %d not below j0r.gz %d", r.Name, r.Packed, r.J0RGz)
		}
		if !(r.Packed < r.Jazz) {
			t.Errorf("%s: packed %d not below jazz %d", r.Name, r.Packed, r.Jazz)
		}
		if !(r.J0RGz < r.Jar) {
			t.Errorf("%s: j0r.gz %d not below jar %d", r.Name, r.J0RGz, r.Jar)
		}
		// Category breakdown sums to ~100%.
		sum := r.Strings + r.Opcodes + r.Ints + r.Refs + r.Misc
		if sum < 99 || sum > 101 {
			t.Errorf("%s: breakdown sums to %.1f%%", r.Name, sum)
		}
		// §10: no one element dominates (none above 60%).
		for label, v := range map[string]float64{"strings": r.Strings,
			"opcodes": r.Opcodes, "refs": r.Refs} {
			if v > 60 {
				t.Errorf("%s: %s %.1f%% dominates", r.Name, label, v)
			}
		}
	}
	// Rows sorted by jar size ascending, as in the paper.
	for i := 1; i < len(rows); i++ {
		if rows[i].Jar < rows[i-1].Jar {
			t.Fatal("Table 6 not sorted by jar size")
		}
	}
}

func TestTable7Shape(t *testing.T) {
	rows, err := Table7(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CompressSecs <= 0 || r.DecompressSecs <= 0 || r.KBPerSec <= 0 {
			t.Errorf("%s: non-positive timing %+v", r.Name, r)
		}
	}
}

func TestTable8Range(t *testing.T) {
	rows, err := Table8(testScale)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if !last.Measured {
		t.Fatal("last row should be the measured range")
	}
	// The paper reports 17–41%; require our range to land in the same
	// regime (packed clearly under half of the gzip'd jar).
	if last.Lo < 5 || last.Hi > 60 {
		t.Errorf("measured range %.0f–%.0f%% outside the paper's regime", last.Lo, last.Hi)
	}
	if last.Lo > last.Hi {
		t.Errorf("inverted range %.0f–%.0f", last.Lo, last.Hi)
	}
}

func TestFigure2Series(t *testing.T) {
	rows, err := Figure2(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("got %d points", len(rows))
	}
	for _, r := range rows {
		if !(r.Packed < r.J0RGz) {
			t.Errorf("%s: packed series above j0r.gz", r.Name)
		}
	}
	var buf bytes.Buffer
	RenderFigure2(&buf, rows)
	if lines := strings.Count(buf.String(), "\n"); lines != 21 {
		t.Errorf("CSV has %d lines, want 21", lines)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	var buf bytes.Buffer
	t1, err := Table1(testScale)
	if err != nil {
		t.Fatal(err)
	}
	RenderTable1(&buf, t1)
	t2, err := Table2(testScale)
	if err != nil {
		t.Fatal(err)
	}
	RenderTable2(&buf, t2)
	t3, err := Table3(testScale)
	if err != nil {
		t.Fatal(err)
	}
	RenderTable3(&buf, t3)
	t4, err := Table4(testScale)
	if err != nil {
		t.Fatal(err)
	}
	RenderTable4(&buf, t4)
	t5, err := Table5(testScale)
	if err != nil {
		t.Fatal(err)
	}
	RenderTable5(&buf, t5)
	t6, err := Table6(testScale)
	if err != nil {
		t.Fatal(err)
	}
	RenderTable6(&buf, t6)
	t7, err := Table7(testScale)
	if err != nil {
		t.Fatal(err)
	}
	RenderTable7(&buf, t7)
	t8, err := Table8(testScale)
	if err != nil {
		t.Fatal(err)
	}
	RenderTable8(&buf, t8)
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Table 4",
		"Table 5", "Table 6", "Table 7", "Table 8", "swingall", "rt"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}
