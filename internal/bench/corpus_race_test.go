package bench

import (
	"sync"
	"testing"

	"classpack/internal/core"
)

// The corpus cache and per-corpus measurement memo use per-key
// once-guards, so concurrent table generation neither races nor
// serializes unrelated work. These stress tests are the teeth:
// `go test -race ./...` is expected to stay clean over them.

// TestLoadConcurrentSameCorpus hammers one cache key from many
// goroutines and requires every caller to observe the same build.
func TestLoadConcurrentSameCorpus(t *testing.T) {
	t.Parallel()
	const goroutines = 16
	got := make([]*Corpus, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			c, err := Load("Hanoi", 0.02)
			if err != nil {
				t.Error(err)
				return
			}
			got[g] = c
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatalf("goroutine %d got a different corpus instance", g)
		}
	}
}

// TestLoadConcurrentDistinctCorpora loads several profiles at once;
// per-key locking means none of these builds serialize against each
// other.
func TestLoadConcurrentDistinctCorpora(t *testing.T) {
	t.Parallel()
	names := Names()
	if len(names) > 6 {
		names = names[:6]
	}
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if _, err := Load(name, 0.02); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}(name)
	}
	wg.Wait()
}

// TestMemoConcurrentMeasurements drives many distinct measurements of
// one corpus concurrently — the shape a parallel table generator
// produces — and then re-reads them to confirm the memo returns stable
// values.
func TestMemoConcurrentMeasurements(t *testing.T) {
	t.Parallel()
	c, err := Load("Hanoi", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	measurements := []func() (int, error){
		c.SJ0R,
		c.Jar,
		c.SJar,
		c.SJ0RGz,
		c.JazzSize,
		func() (int, error) { return c.PackedSize(core.DefaultOptions()) },
		func() (int, error) {
			o := core.DefaultOptions()
			o.StackState = false
			return c.PackedSize(o)
		},
	}
	first := make([]int, len(measurements))
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for mi, m := range measurements {
			wg.Add(1)
			go func(mi int, m func() (int, error)) {
				defer wg.Done()
				v, err := m()
				if err != nil {
					t.Errorf("measurement %d: %v", mi, err)
					return
				}
				if v <= 0 {
					t.Errorf("measurement %d: size %d", mi, v)
				}
			}(mi, m)
		}
	}
	wg.Wait()
	for mi, m := range measurements {
		if first[mi], err = m(); err != nil {
			t.Fatal(err)
		}
	}
	for mi, m := range measurements {
		v, err := m()
		if err != nil || v != first[mi] {
			t.Fatalf("measurement %d unstable: %d then %d (%v)", mi, first[mi], v, err)
		}
	}
}
