package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
)

func kb(bytes int) string { return fmt.Sprintf("%.0f", float64(bytes)/1024) }

// RenderTable1 prints Table 1 in the paper's layout.
func RenderTable1(w io.Writer, rows []T1Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "Table 1: Benchmark programs (sizes in KBytes)")
	fmt.Fprintln(tw, "Benchmark\tsj0r\tjar\tsjar\tsj0r.gz\tsjar/sj0r\tsjar/jar\tsj0r.gz/sjar\tDescription\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t\n",
			r.Name, kb(r.SJ0R), kb(r.Jar), kb(r.SJar), kb(r.SJ0RGz),
			fmtPct(pct(r.SJar, r.SJ0R)), fmtPct(pct(r.SJar, r.Jar)),
			fmtPct(pct(r.SJ0RGz, r.SJar)), r.Description)
	}
	tw.Flush()
}

// RenderTable2 prints the classfile breakdown.
func RenderTable2(w io.Writer, t *T2) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "Table 2: Classfile breakdown (uncompressed size, KBytes)")
	header := "Component"
	for _, b := range t.Benchmarks {
		header += "\t" + b
	}
	fmt.Fprintln(tw, header+"\t")
	for _, row := range t.Rows {
		line := row.Label
		for _, v := range row.Bytes {
			line += "\t" + kb(v)
		}
		fmt.Fprintln(tw, line+"\t")
	}
	tw.Flush()
}

// RenderTable3 prints the reference-scheme comparison.
func RenderTable3(w io.Writer, rows []T3Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "Table 3: Size (in bytes) of compressed references")
	header := "Benchmark"
	for _, s := range T3Schemes() {
		header += "\t" + s.String()
	}
	fmt.Fprintln(tw, header+"\t")
	for _, r := range rows {
		line := r.Name
		for _, v := range r.Sizes {
			line += "\t" + fmt.Sprint(v)
		}
		fmt.Fprintln(tw, line+"\t")
	}
	tw.Flush()
}

// RenderTable4 prints the bytecode-component compression factors.
func RenderTable4(w io.Writer, t *T4) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "Table 4: Compression for bytecode components")
	header := "Component"
	for _, b := range t.Benchmarks {
		header += "\t" + b
	}
	fmt.Fprintln(tw, header+"\t")
	for _, row := range t.Rows {
		line := row.Label
		for _, v := range row.Pct {
			line += "\t" + fmtPct(v)
		}
		fmt.Fprintln(tw, line+"\t")
	}
	tw.Flush()
}

// RenderTable5 prints the packing ablations.
func RenderTable5(w io.Writer, t *T5) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "Table 5: Effects of separate packing and not gzipping")
	fmt.Fprintln(w, "(% of size of jar file of gzip'd classfiles)")
	header := "Option"
	for _, b := range t.Benchmarks {
		header += "\t" + b
	}
	fmt.Fprintln(tw, header+"\t")
	for _, row := range t.Rows {
		line := row.Label
		for _, v := range row.Pct {
			line += "\t" + fmtPct(v)
		}
		fmt.Fprintln(tw, line+"\t")
	}
	tw.Flush()
}

// RenderTable6 prints the main compression-ratio table.
func RenderTable6(w io.Writer, rows []T6Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "Table 6: Compression ratios")
	fmt.Fprintln(tw, "Benchmark\tjar\tj0r.gz\tJazz\tPacked\tj0r.gz%\tJazz%\tPacked%\tStrings\tOpcodes\tInts\tRefs\tMisc\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t\n",
			r.Name, kb(r.Jar), kb(r.J0RGz), kb(r.Jazz), kb(r.Packed),
			fmtPct(pct(r.J0RGz, r.Jar)), fmtPct(pct(r.Jazz, r.Jar)), fmtPct(pct(r.Packed, r.Jar)),
			fmtPct(r.Strings), fmtPct(r.Opcodes), fmtPct(r.Ints), fmtPct(r.Refs), fmtPct(r.Misc))
	}
	tw.Flush()
}

// RenderTable7 prints execution times.
func RenderTable7(w io.Writer, rows []T7Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "Table 7: Execution times")
	fmt.Fprintln(tw, "File\tCompress (s)\tDecompress (s)\tKB/s\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.0f\t\n", r.Name, r.CompressSecs, r.DecompressSecs, r.KBPerSec)
	}
	tw.Flush()
}

// RenderTable8 prints the related-work comparison.
func RenderTable8(w io.Writer, rows []T8Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table 8: Results on wire-code program compression in related work")
	fmt.Fprintln(tw, "System\t% of gzip'd classfiles\tSource\t")
	for _, r := range rows {
		src := "quoted from the paper"
		if r.Measured {
			src = "measured here"
		}
		rangeStr := fmt.Sprintf("%.0f", r.Lo)
		if r.Hi != r.Lo {
			rangeStr = fmt.Sprintf("%.0f – %.0f", r.Lo, r.Hi)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t\n", r.System, rangeStr, src)
	}
	tw.Flush()
}

// RenderFigure2 emits the Figure 2 series as CSV (jar KB on a log axis,
// three percent-of-jar series).
func RenderFigure2(w io.Writer, rows []Fig2Row) {
	fmt.Fprintln(w, "# Figure 2: compression ratios vs jar size")
	fmt.Fprintln(w, "benchmark,jar_kb,j0rgz_pct,jazz_pct,packed_pct")
	for _, r := range rows {
		fmt.Fprintf(w, "%s,%.1f,%.1f,%.1f,%.1f\n", r.Name, r.JarKB, r.J0RGz, r.Jazz, r.Packed)
	}
}
