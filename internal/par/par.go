// Package par provides the bounded, order-preserving worker pool the
// codec fans independent per-item work across: per-file parse/strip and
// write-out in the public API, per-stream compression and decompression
// in the container, and whole-archive verification. Work is indexed,
// results are written by index, and the error reported is always the
// lowest-index failure — so output content, output order, and error
// selection never depend on the worker count.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a concurrency request for n items: values <= 0 mean
// "all cores" (runtime.GOMAXPROCS). The result is clamped to [1, n] for
// n >= 1, and is 1 when there is nothing to do.
func Workers(concurrency, n int) int {
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	if concurrency > n {
		concurrency = n
	}
	if concurrency < 1 {
		concurrency = 1
	}
	return concurrency
}

// Do runs f(i) for every i in [0, n) on at most Workers(concurrency, n)
// goroutines and returns the lowest-index error — the same error a
// serial loop would stop at. With one worker it runs every call inline
// on the calling goroutine, reproducing the serial path exactly
// (including stopping at the first failure).
//
// Under parallel execution an index after a failing one may still have
// been processed by the time Do returns; callers must treat the result
// slice as undefined past the returned error's index, just as a serial
// loop would have left it unfilled.
func Do(concurrency, n int, f func(i int) error) error {
	return DoWorkers(concurrency, n, func(_, i int) error { return f(i) })
}

// DoWorkers is Do for callbacks that keep per-worker scratch state: f
// additionally receives the calling worker's id in [0, Workers(concurrency,
// n)). A given worker id is never used by two goroutines concurrently, so
// scratch indexed by it needs no locking. Item-to-worker assignment is
// load-dependent; anything that must not vary with scheduling (output
// content, order, error selection) carries the item index, exactly as in
// Do.
func DoWorkers(concurrency, n int, f func(worker, i int) error) error {
	workers := Workers(concurrency, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := f(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Int64 // lowest failing index seen so far
		wg     sync.WaitGroup
	)
	errs := make([]error, n)
	failed.Store(int64(n))
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				// The claim counter is monotonic, so once a claimed index
				// lies past the failure frontier every later claim will
				// too; items before the frontier still run to completion
				// so the lowest-index error wins deterministically.
				if i >= n || int64(i) > failed.Load() {
					return
				}
				if err := f(worker, i); err != nil {
					errs[i] = err
					for {
						cur := failed.Load()
						if int64(i) >= cur || failed.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
