package par

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cores := runtime.GOMAXPROCS(0)
	cases := []struct{ concurrency, n, want int }{
		{0, 100, cores},
		{-3, 100, cores},
		{1, 100, 1},
		{4, 2, 2},
		{4, 0, 1},
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.concurrency, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.concurrency, c.n, got, c.want)
		}
	}
}

func TestDoVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		err := Do(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestDoReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 3, 0} {
		err := Do(workers, 500, func(i int) error {
			if i == 7 || i == 400 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 7" {
			t.Errorf("workers=%d: err = %v, want fail at 7", workers, err)
		}
	}
}

func TestDoSerialStopsEarly(t *testing.T) {
	ran := 0
	err := Do(1, 10, func(i int) error {
		ran++
		if i == 3 {
			return fmt.Errorf("stop")
		}
		return nil
	})
	if err == nil || ran != 4 {
		t.Fatalf("serial Do ran %d items (err %v), want stop after 4", ran, err)
	}
}

func TestDoZeroItems(t *testing.T) {
	if err := Do(0, 0, func(int) error { return fmt.Errorf("called") }); err != nil {
		t.Fatal(err)
	}
}

func TestDoResultsAreOrdered(t *testing.T) {
	const n = 2000
	out := make([]int, n)
	if err := Do(8, n, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
