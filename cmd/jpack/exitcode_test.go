package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestExitCodes pins the CLI contract: usage mistakes exit 2,
// operational failures (I/O, invalid classes) exit 1, success exits 0.
func TestExitCodes(t *testing.T) {
	classes, jarPath := writeClasses(t)
	dir := t.TempDir()

	usageCases := [][]string{
		nil,                   // no command
		{"bogus"},             // unknown command
		{"pack"},              // no inputs
		{"pack", "-wat", "x"}, // unknown flag
		{"pack", "-o"},        // dangling flag value
		{"pack", "-j", "-1", classes[0]},
		{"pack", "-scheme", "nope", classes[0]},
		{"unpack", "a", "b"}, // operand count
		{"strip", "a", "b"},
		{"remote"},         // missing subcommand
		{"remote", "wat"},  // unknown subcommand
		{"remote", "pack"}, // no inputs
		{"remote", "unpack", "a", "b"},
	}
	for _, args := range usageCases {
		if got := run(args); got != exitUsage {
			t.Errorf("run(%q) = %d, want %d (usage)", args, got, exitUsage)
		}
	}

	badClass := filepath.Join(dir, "Bad.class")
	if err := os.WriteFile(badClass, []byte("not a class file"), 0o644); err != nil {
		t.Fatal(err)
	}
	failureCases := [][]string{
		{"pack", filepath.Join(dir, "missing.class")}, // unreadable input
		{"pack", "-o", filepath.Join(dir, "x.cjp"), badClass},
		{"unpack", filepath.Join(dir, "missing.cjp")},
		{"verify", badClass}, // invalid class
	}
	for _, args := range failureCases {
		if got := run(args); got != exitFailure {
			t.Errorf("run(%q) = %d, want %d (failure)", args, got, exitFailure)
		}
	}

	out := filepath.Join(dir, "ok.cjp")
	okCases := [][]string{
		{"help"},
		append([]string{"pack", "-o", out}, classes...),
		{"pack", "-o", filepath.Join(dir, "jar.cjp"), jarPath},
		{"unpack", "-d", filepath.Join(dir, "un"), out},
		append([]string{"verify"}, classes...),
	}
	for _, args := range okCases {
		if got := run(args); got != exitOK {
			t.Errorf("run(%q) = %d, want %d (ok)", args, got, exitOK)
		}
	}

	// No JPACKD_SERVER in the environment: remote without -server is a
	// usage error, not a connection failure.
	t.Setenv("JPACKD_SERVER", "")
	if got := run([]string{"remote", "pack", jarPath}); got != exitUsage {
		t.Errorf("remote pack without server = %d, want %d", got, exitUsage)
	}
}
