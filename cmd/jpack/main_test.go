package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"classpack/internal/archive"
	"classpack/internal/classfile"
	"classpack/internal/minijava"
	"classpack/internal/synth"
)

// writeClasses compiles a small program into a temp dir and returns the
// .class paths plus a jar containing them and one non-class member.
func writeClasses(t *testing.T) (classPaths []string, jarPath string) {
	t.Helper()
	dir := t.TempDir()
	cfs, err := minijava.Compile(`
class Main { public static void main(String[] a) { System.out.println(new W().twice(21)); } }
class W { public int twice(int x) { return x + x; } }
`, minijava.CompileOptions{SourceFile: "W.java"})
	if err != nil {
		t.Fatal(err)
	}
	var members []archive.File
	for _, cf := range cfs {
		data, err := classfile.Write(cf)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, cf.ThisClassName()+".class")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		classPaths = append(classPaths, path)
		members = append(members, archive.File{Name: cf.ThisClassName() + ".class", Data: data})
	}
	members = append(members, archive.File{Name: "res/logo.png", Data: []byte{9, 9}})
	jar, err := archive.WriteJar(members)
	if err != nil {
		t.Fatal(err)
	}
	jarPath = filepath.Join(dir, "app.jar")
	if err := os.WriteFile(jarPath, jar, 0o644); err != nil {
		t.Fatal(err)
	}
	return classPaths, jarPath
}

func TestPackUnpackVerifyFlow(t *testing.T) {
	classes, _ := writeClasses(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "app.cjp")

	if err := cmdPack(append([]string{"-o", out}, classes...)); err != nil {
		t.Fatalf("pack: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
	unDir := filepath.Join(dir, "un")
	if err := cmdUnpack([]string{"-d", unDir, out}); err != nil {
		t.Fatalf("unpack: %v", err)
	}
	mainClass := filepath.Join(unDir, "Main.class")
	if err := cmdVerify([]string{mainClass, filepath.Join(unDir, "W.class")}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := cmdDump([]string{"-pool", "-code", mainClass}); err != nil {
		t.Fatalf("dump: %v", err)
	}
	if err := cmdStats(classes); err != nil {
		t.Fatalf("stats: %v", err)
	}
}

func TestPackFromJarAndUnpackToJar(t *testing.T) {
	_, jar := writeClasses(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "app.cjp")
	if err := cmdPack([]string{"-o", out, "-preload", jar}); err != nil {
		t.Fatalf("pack jar: %v", err)
	}
	outJar := filepath.Join(dir, "rebuilt.jar")
	if err := cmdUnpack([]string{"-jar", outJar, out}); err != nil {
		t.Fatalf("unpack to jar: %v", err)
	}
	data, err := os.ReadFile(outJar)
	if err != nil {
		t.Fatal(err)
	}
	members, err := archive.ReadJar(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 {
		t.Fatalf("rebuilt jar has %d members, want 2", len(members))
	}
}

func TestUnpackSalvageCommand(t *testing.T) {
	classes, _ := writeClasses(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "app.cjp")
	if err := cmdPack(append([]string{"-o", out}, classes...)); err != nil {
		t.Fatalf("pack: %v", err)
	}

	// A pristine archive salvages with exit 0 and the full class set.
	unDir := filepath.Join(dir, "clean")
	if err := cmdUnpack([]string{"-salvage", "-d", unDir, out}); err != nil {
		t.Fatalf("salvage of pristine archive: %v", err)
	}
	if _, err := os.Stat(filepath.Join(unDir, "Main.class")); err != nil {
		t.Fatal(err)
	}

	// Damage the archive near the end: salvage must fail (classes were
	// lost) but a plain unpack must fail harder (nothing at all).
	packed, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	packed[len(packed)-12] ^= 0x10
	damaged := filepath.Join(dir, "damaged.cjp")
	if err := os.WriteFile(damaged, packed, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdUnpack([]string{damaged}); err == nil {
		t.Fatal("plain unpack of damaged archive succeeded")
	}
	salvJar := filepath.Join(dir, "salvaged.jar")
	if err := cmdUnpack([]string{"-salvage", "-jar", salvJar, damaged}); err == nil {
		t.Fatal("salvage of lossy archive exited 0, want failure reporting lost classes")
	}
	if _, err := os.Stat(salvJar); err != nil {
		t.Fatalf("salvage did not write the recovered jar: %v", err)
	}
}

func TestVerifyJarAndMaxFailures(t *testing.T) {
	_, jarPath := writeClasses(t)
	// Jar operands are expanded: both class members verify, the resource
	// member is skipped.
	if err := cmdVerify([]string{jarPath}); err != nil {
		t.Fatalf("verify jar: %v", err)
	}
	// Two invalid classes with -max-failures 1: still exit nonzero.
	dir := t.TempDir()
	var bads []string
	for i := 0; i < 2; i++ {
		path := filepath.Join(dir, "bad"+string(rune('0'+i))+".class")
		if err := os.WriteFile(path, []byte{0xde, 0xad}, 0o644); err != nil {
			t.Fatal(err)
		}
		bads = append(bads, path)
	}
	if err := cmdVerify(append([]string{"-max-failures", "1"}, bads...)); err == nil {
		t.Fatal("verify of invalid classes exited 0")
	}
	if err := cmdVerify(append([]string{"-max-failures", "bogus"}, bads...)); err == nil {
		t.Fatal("bogus -max-failures accepted")
	}
}

func TestStripCommand(t *testing.T) {
	classes, _ := writeClasses(t)
	out := filepath.Join(t.TempDir(), "stripped.class")
	if err := cmdStrip([]string{"-o", out, classes[0]}); err != nil {
		t.Fatalf("strip: %v", err)
	}
	orig, _ := os.ReadFile(classes[0])
	stripped, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(stripped) >= len(orig) {
		t.Fatalf("strip did not shrink: %d -> %d", len(orig), len(stripped))
	}
}

func TestSchemeFlags(t *testing.T) {
	classes, _ := writeClasses(t)
	dir := t.TempDir()
	for _, scheme := range []string{"simple", "basic", "mtf", "mtf-transients", "mtf-context", "mtf-full"} {
		out := filepath.Join(dir, scheme+".cjp")
		if err := cmdPack(append([]string{"-o", out, "-scheme", scheme, "-no-stackstate"}, classes...)); err != nil {
			t.Fatalf("scheme %s: %v", scheme, err)
		}
	}
	if err := cmdPack(append([]string{"-scheme", "bogus"}, classes...)); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestConcurrencyFlag(t *testing.T) {
	classes, _ := writeClasses(t)
	dir := t.TempDir()
	// Archives packed at -j 1, -j 4, and -j 0 (all cores) must be
	// byte-identical, and each must unpack at any -j.
	var want []byte
	for _, j := range []string{"1", "4", "0"} {
		out := filepath.Join(dir, "j"+j+".cjp")
		if err := cmdPack(append([]string{"-o", out, "-j", j}, classes...)); err != nil {
			t.Fatalf("pack -j %s: %v", j, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = data
		} else if string(data) != string(want) {
			t.Fatalf("pack -j %s produced a different archive", j)
		}
		unDir := filepath.Join(dir, "un"+j)
		if err := cmdUnpack([]string{"-d", unDir, "-j", j, out}); err != nil {
			t.Fatalf("unpack -j %s: %v", j, err)
		}
		if err := cmdVerify([]string{"-deep", "-j", j, filepath.Join(unDir, "Main.class")}); err != nil {
			t.Fatalf("verify -j %s: %v", j, err)
		}
	}
}

func TestConcurrencyFlagErrors(t *testing.T) {
	classes, _ := writeClasses(t)
	for _, j := range []string{"-1", "x", ""} {
		if err := cmdPack(append([]string{"-j", j}, classes...)); err == nil {
			t.Errorf("pack -j %q accepted", j)
		}
	}
	if err := cmdUnpack([]string{"-j", "nope", "whatever.cjp"}); err == nil {
		t.Error("unpack -j nope accepted")
	}
}

func TestFlagErrors(t *testing.T) {
	if err := cmdPack([]string{"-o"}); err == nil {
		t.Error("dangling flag accepted")
	}
	if err := cmdPack([]string{"-wat", "x"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := cmdPack(nil); err == nil {
		t.Error("pack with no inputs accepted")
	}
	if err := cmdUnpack([]string{"a", "b"}); err == nil {
		t.Error("unpack with two archives accepted")
	}
	if err := cmdVerify([]string{filepath.Join(t.TempDir(), "missing.class")}); err == nil {
		t.Error("verify of missing file accepted")
	}
}

func TestVerifyBytecodeCommand(t *testing.T) {
	classes, jarPath := writeClasses(t)
	// Per-method verdicts over class and jar operands.
	if err := cmdVerify(append([]string{"-bytecode"}, classes...)); err != nil {
		t.Fatalf("verify -bytecode classes: %v", err)
	}
	if err := cmdVerify([]string{"-bytecode", jarPath}); err != nil {
		t.Fatalf("verify -bytecode jar: %v", err)
	}
	// Packed archives are expanded and their classes verified.
	out := filepath.Join(t.TempDir(), "app.cjp")
	if err := cmdPack(append([]string{"-o", out}, classes...)); err != nil {
		t.Fatalf("pack: %v", err)
	}
	if err := cmdVerify([]string{"-bytecode", out}); err != nil {
		t.Fatalf("verify -bytecode archive: %v", err)
	}
	if err := cmdVerify([]string{out}); err != nil {
		t.Fatalf("verify archive (structural): %v", err)
	}

	// A method body that underflows the stack fails with method context.
	data, err := os.ReadFile(classes[0])
	if err != nil {
		t.Fatal(err)
	}
	cf, err := classfile.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	for mi := range cf.Methods {
		if code := classfile.CodeOf(&cf.Methods[mi]); code != nil && len(code.Code) > 0 {
			code.Code = []byte{0x60, 0xb1} // iadd on an empty stack; return
			break
		}
	}
	bad, err := classfile.Write(cf)
	if err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(t.TempDir(), "Bad.class")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-bytecode", badPath}); err == nil {
		t.Fatal("verify -bytecode accepted a stack underflow")
	}
}

func TestChunkPackLsExtract(t *testing.T) {
	classes, _ := writeClasses(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "app.cjp")
	if err := cmdPack(append([]string{"-o", out, "-chunk", "1"}, classes...)); err != nil {
		t.Fatalf("pack -chunk: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if data[4] != 3 {
		t.Fatalf("pack -chunk 1 wrote version %d, want 3", data[4])
	}

	if err := cmdLs([]string{out}); err != nil {
		t.Fatalf("ls: %v", err)
	}

	// Extract one class by exact name; compare against a full unpack.
	unDir := filepath.Join(dir, "full")
	if err := cmdUnpack([]string{"-d", unDir, out}); err != nil {
		t.Fatalf("unpack: %v", err)
	}
	exDir := filepath.Join(dir, "one")
	if err := cmdExtract([]string{"-d", exDir, out, "Main"}); err != nil {
		t.Fatalf("extract: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(exDir, "Main.class"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(unDir, "Main.class"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("extracted Main.class differs from full unpack")
	}
	if _, err := os.Stat(filepath.Join(exDir, "W.class")); err == nil {
		t.Fatal("extract Main also wrote W.class")
	}

	// Glob pattern into a jar.
	outJar := filepath.Join(dir, "subset.jar")
	if err := cmdExtract([]string{"-jar", outJar, out, "*"}); err != nil {
		t.Fatalf("extract glob: %v", err)
	}
	jar, err := os.ReadFile(outJar)
	if err != nil {
		t.Fatal(err)
	}
	members, err := archive.ReadJar(jar)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 {
		t.Fatalf("extracted jar has %d members, want 2", len(members))
	}

	// No match is a failure; a malformed pattern is a usage error.
	if err := cmdExtract([]string{"-d", exDir, out, "no/such/*"}); err == nil {
		t.Fatal("extract accepted a pattern matching nothing")
	}
	err = cmdExtract([]string{"-d", exDir, out, "a[/b"})
	if err == nil {
		t.Fatal("extract accepted a malformed pattern")
	}
	var ue usageError
	if !errorsAs(err, &ue) {
		t.Fatalf("malformed pattern error %v is not a usage error", err)
	}

	// ls on a monolithic (version-2) archive still lists names.
	v2 := filepath.Join(dir, "v2.cjp")
	if err := cmdPack(append([]string{"-o", v2}, classes...)); err != nil {
		t.Fatal(err)
	}
	if err := cmdLs([]string{v2}); err != nil {
		t.Fatalf("ls v2: %v", err)
	}
	if err := cmdExtract([]string{"-d", filepath.Join(dir, "v2x"), v2, "W"}); err != nil {
		t.Fatalf("extract v2: %v", err)
	}
}

// errorsAs keeps the test import list stable.
func errorsAs(err error, target *usageError) bool {
	for err != nil {
		if ue, ok := err.(usageError); ok {
			*target = ue
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestDeltaSmoke is the end-to-end delta workflow the `make delta-smoke`
// target runs: pack two versions of a synthetic corpus that differ in
// ~5% of their classes, diff them, apply the patch to the old archive,
// and require (a) the rebuilt archive is byte-identical to the new one
// and (b) the patch is under 25% of the full new archive.
func TestDeltaSmoke(t *testing.T) {
	p, err := synth.ProfileByName("rt")
	if err != nil {
		t.Fatal(err)
	}
	cfs, err := synth.GenerateStripped(p, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	oldRaw := make([][]byte, len(cfs))
	for i, cf := range cfs {
		if oldRaw[i], err = classfile.Write(cf); err != nil {
			t.Fatal(err)
		}
	}
	newRaw, changed, err := synth.MutateClasses(oldRaw, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 || changed*4 > len(oldRaw) {
		t.Fatalf("version bump changed %d of %d classes", changed, len(oldRaw))
	}
	dir := t.TempDir()
	writeJar := func(name string, raw [][]byte) string {
		var members []archive.File
		for i, data := range raw {
			members = append(members, archive.File{Name: fmt.Sprintf("c%04d.class", i), Data: data})
		}
		jar, err := archive.WriteJar(members)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, jar, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldJar := writeJar("old.jar", oldRaw)
	newJar := writeJar("new.jar", newRaw)

	oldCjp := filepath.Join(dir, "old.cjp")
	newCjp := filepath.Join(dir, "new.cjp")
	patchPath := filepath.Join(dir, "patch.cjpd")
	rebuilt := filepath.Join(dir, "rebuilt.cjp")
	for _, args := range [][]string{
		{"pack", "-o", oldCjp, "-chunk", "16", oldJar},
		{"pack", "-o", newCjp, "-chunk", "16", newJar},
		{"delta", "-o", patchPath, oldCjp, newCjp},
		{"apply", "-o", rebuilt, oldCjp, patchPath},
	} {
		if code := run(args); code != exitOK {
			t.Fatalf("run(%q) exited %d", args, code)
		}
	}

	newArc, err := os.ReadFile(newCjp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newArc) {
		t.Fatal("applied archive differs from the packed new archive")
	}
	patch, err := os.ReadFile(patchPath)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(patch)) / float64(len(newArc)); ratio >= 0.25 {
		t.Fatalf("patch is %.1f%% of the full archive, want < 25%% (patch %d, archive %d)",
			100*ratio, len(patch), len(newArc))
	}
	t.Logf("delta smoke: %d classes (%d changed), archive %d bytes, patch %d bytes (%.1f%%)",
		len(newRaw), changed, len(newArc), len(patch),
		100*float64(len(patch))/float64(len(newArc)))

	// Failure modes: applying the patch to the wrong base exits 1, and
	// a corrupted patch is rejected, also with exit 1.
	if code := run([]string{"apply", "-o", filepath.Join(dir, "bad.cjp"), newCjp, patchPath}); code != exitFailure {
		t.Fatalf("apply to wrong base exited %d, want %d", code, exitFailure)
	}
	patch[len(patch)/2] ^= 0x40
	badPatch := filepath.Join(dir, "bad.cjpd")
	if err := os.WriteFile(badPatch, patch, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"apply", "-o", filepath.Join(dir, "bad.cjp"), oldCjp, badPatch}); code != exitFailure {
		t.Fatalf("apply of corrupt patch exited %d, want %d", code, exitFailure)
	}
}
