// Command jpack packs and unpacks collections of Java class files using
// the wire format of "Compressing Java Class Files" (Pugh, PLDI 1999).
//
// Usage:
//
//	jpack pack    [-o out.cjp] [-scheme mtf-full] [-no-stackstate] [-no-gzip] [-chunk N] file.class... | app.jar
//	jpack unpack  [-d outdir] [-jar out.jar] [-salvage] archive.cjp
//	jpack ls      archive.cjp
//	jpack extract [-d outdir] [-jar out.jar] archive.cjp pattern...
//	jpack delta   [-o patch.cjpd] old.cjp new.cjp
//	jpack apply   [-o new.cjp] old.cjp patch.cjpd
//	jpack strip   [-o out.class] file.class
//	jpack stats   archive-inputs...
//	jpack verify  [-deep] [-bytecode] [-max-failures N] file.class... | app.jar | archive.cjp
package main

import (
	"archive/zip"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"classpack"
	"classpack/internal/classfile"
	"classpack/internal/core"
	"classpack/internal/dump"
)

// archiveMagic identifies a packed archive among verify operands.
var archiveMagic = core.Magic

// Exit codes: 0 success, 1 operational failure (I/O, bad input data,
// invalid classes), 2 usage error (unknown command/flag, bad flag
// value, wrong operands).
const (
	exitOK      = 0
	exitFailure = 1
	exitUsage   = 2
)

// usageError marks a command-line mistake, distinguishing exit code 2
// from operational failures (exit code 1).
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// usagef builds a usageError like fmt.Errorf.
func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func main() { os.Exit(run(os.Args[1:])) }

// run dispatches a jpack invocation and returns its exit code; main is
// kept trivial so tests can assert codes without spawning a process.
// Global -cpuprofile/-memprofile flags precede the command so any
// subcommand can be profiled:
//
//	jpack -cpuprofile cpu.out pack -o app.cjp app.jar
func run(args []string) int {
	prof, args, err := parseProfileFlags(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jpack:", err)
		return exitUsage
	}
	if err := prof.start(); err != nil {
		fmt.Fprintln(os.Stderr, "jpack:", err)
		return exitFailure
	}
	code := dispatch(args)
	if err := prof.stop(); err != nil {
		fmt.Fprintln(os.Stderr, "jpack:", err)
		if code == exitOK {
			code = exitFailure
		}
	}
	return code
}

// dispatch runs the subcommand and maps its error to an exit code.
func dispatch(args []string) int {
	if len(args) < 1 {
		usage()
		return exitUsage
	}
	var err error
	switch args[0] {
	case "pack":
		err = cmdPack(args[1:])
	case "unpack":
		err = cmdUnpack(args[1:])
	case "ls":
		err = cmdLs(args[1:])
	case "extract":
		err = cmdExtract(args[1:])
	case "delta":
		err = cmdDelta(args[1:])
	case "apply":
		err = cmdApply(args[1:])
	case "strip":
		err = cmdStrip(args[1:])
	case "stats":
		err = cmdStats(args[1:])
	case "verify":
		err = cmdVerify(args[1:])
	case "dump":
		err = cmdDump(args[1:])
	case "remote":
		err = cmdRemote(args[1:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "jpack: unknown command %q\n", args[0])
		usage()
		return exitUsage
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "jpack:", err)
		var ue usageError
		if errors.As(err, &ue) {
			return exitUsage
		}
		return exitFailure
	}
	return exitOK
}

// profiler holds the state of the global -cpuprofile/-memprofile
// flags: an active CPU profile to stop and a heap-profile path to
// write once the command finishes.
type profiler struct {
	cpuPath string
	memPath string
	cpuFile *os.File
}

// parseProfileFlags strips the leading global profiling flags from the
// argument list, leaving the subcommand and its own flags untouched.
func parseProfileFlags(args []string) (*profiler, []string, error) {
	p := &profiler{}
	for len(args) > 0 {
		switch args[0] {
		case "-cpuprofile", "-memprofile":
			if len(args) < 2 {
				return nil, nil, usagef("flag %s needs a file argument", args[0])
			}
			if args[0] == "-cpuprofile" {
				p.cpuPath = args[1]
			} else {
				p.memPath = args[1]
			}
			args = args[2:]
		default:
			return p, args, nil
		}
	}
	return p, args, nil
}

func (p *profiler) start() error {
	if p.cpuPath == "" {
		return nil
	}
	f, err := os.Create(p.cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.cpuFile = f
	return nil
}

func (p *profiler) stop() error {
	var firstErr error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		firstErr = p.cpuFile.Close()
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err == nil {
			// Settle the heap so the profile reflects live objects,
			// not whatever garbage the command left behind.
			runtime.GC()
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  jpack pack    [-o out.cjp] [-scheme NAME] [-no-stackstate] [-no-gzip] [-chunk N] [-j N] <file.class ... | app.jar>
  jpack unpack  [-d outdir] [-jar out.jar] [-j N] [-salvage] <archive.cjp>
  jpack ls      <archive.cjp>
  jpack extract [-d outdir] [-jar out.jar] [-j N] <archive.cjp> <class | pattern> ...
  jpack delta   [-o patch.cjpd] [-j N] <old.cjp> <new.cjp>
  jpack apply   [-o new.cjp] [-j N] <old.cjp> <patch.cjpd>
  jpack strip   [-o out.class] <file.class>
  jpack stats   <file.class ... | app.jar>
  jpack verify  [-deep] [-bytecode] [-j N] [-max-failures N] <file.class ... | app.jar | archive.cjp>
  jpack dump    [-pool] [-code] <file.class ... | app.jar>
  jpack remote pack   [-server URL] [-o out.cjp] <app.jar | file.class ...>
  jpack remote unpack [-server URL] [-jar out.jar | -d outdir] <archive.cjp>

schemes: simple, basic, mtf, mtf-transients, mtf-context, mtf-full (default)
-j N bounds the worker pool (0 = all cores, the default; 1 = serial).
Output is byte-identical for every -j value.
pack -chunk N writes the version-3 random-access layout, grouping N
classes per chunk behind a seekable class index; 0 (the default) keeps
the monolithic version-2 layout.
ls lists an archive's classes without decoding class bodies (for
version 3, per-chunk sizes too); extract decodes only the chunks
holding the selected classes ('java/util/*' patterns use path.Match).
delta writes a CJPD patch carrying only the classes new.cjp adds or
changes relative to old.cjp; apply rebuilds new.cjp byte-for-byte from
old.cjp plus the patch, verifying the recorded digest.
-salvage recovers what a damaged archive still holds, prints a damage
report to stderr, and exits 1 when any classes were lost.
verify -deep adds the dataflow bytecode verifier; -bytecode prints one
verdict per method instead, locating failures by pc and opcode.
verify operands may be packed archives: their classes are unpacked and
verified individually.
remote commands talk to a jpackd server (-server or $JPACKD_SERVER).

exit codes: 0 ok, 1 pack/verify failure, 2 usage error.
`)
}

func schemeByName(name string) (classpack.Scheme, error) {
	s, err := classpack.SchemeByName(name)
	if err != nil {
		return 0, usageError{err}
	}
	return s, nil
}

// parseJobs parses a -j value: 0 means all cores, 1 means serial.
func parseJobs(s string) (int, error) {
	j, err := strconv.Atoi(s)
	if err != nil || j < 0 {
		return 0, usagef("invalid -j value %q (want an integer >= 0)", s)
	}
	return j, nil
}

// throughput formats a byte count over a duration as decimal MB/s.
func throughput(bytes int, elapsed time.Duration) string {
	s := elapsed.Seconds()
	if s <= 0 {
		s = 1e-9
	}
	return fmt.Sprintf("%.1f MB/s", float64(bytes)/1e6/s)
}

// parseFlags splits leading -flag arguments from file operands.
func parseFlags(args []string, flags map[string]*string, bools map[string]*bool) ([]string, error) {
	i := 0
	for i < len(args) {
		arg := args[i]
		if !strings.HasPrefix(arg, "-") {
			break
		}
		if b, ok := bools[arg]; ok {
			*b = true
			i++
			continue
		}
		if f, ok := flags[arg]; ok {
			if i+1 >= len(args) {
				return nil, usagef("flag %s needs a value", arg)
			}
			*f = args[i+1]
			i += 2
			continue
		}
		return nil, usagef("unknown flag %s", arg)
	}
	return args[i:], nil
}

// classInput is one class to process plus the name to report it under:
// the operand path for a .class file, "jar!member" for a jar member.
type classInput struct {
	name string
	data []byte
}

// loadClassInputs reads the operands: .class files directly, .jar files as
// containers of classes. It returns class bytes and skipped member names.
func loadClassInputs(paths []string) ([][]byte, []string, error) {
	inputs, skipped, err := loadNamedClassInputs(paths)
	if err != nil {
		return nil, nil, err
	}
	classes := make([][]byte, len(inputs))
	for i, in := range inputs {
		classes[i] = in.data
	}
	return classes, skipped, nil
}

// loadNamedClassInputs is loadClassInputs keeping a reportable name per
// class, for commands that print per-class verdicts.
func loadNamedClassInputs(paths []string) ([]classInput, []string, error) {
	var classes []classInput
	var skipped []string
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		if strings.HasSuffix(path, ".jar") || strings.HasSuffix(path, ".zip") {
			members, skip, err := jarClasses(data)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", path, err)
			}
			for _, m := range members {
				classes = append(classes, classInput{path + "!" + m.name, m.data})
			}
			skipped = append(skipped, skip...)
			continue
		}
		classes = append(classes, classInput{path, data})
	}
	return classes, skipped, nil
}

func jarClasses(jar []byte) ([]classInput, []string, error) {
	zr, err := zip.NewReader(bytes.NewReader(jar), int64(len(jar)))
	if err != nil {
		return nil, nil, err
	}
	var classes []classInput
	var skipped []string
	for _, zf := range zr.File {
		if !strings.HasSuffix(zf.Name, ".class") {
			if !strings.HasSuffix(zf.Name, "/") {
				skipped = append(skipped, zf.Name)
			}
			continue
		}
		r, err := zf.Open()
		if err != nil {
			return nil, nil, err
		}
		data, err := io.ReadAll(r)
		r.Close()
		if err != nil {
			return nil, nil, err
		}
		classes = append(classes, classInput{zf.Name, data})
	}
	return classes, skipped, nil
}

func cmdPack(args []string) error {
	out := "out.cjp"
	scheme := "mtf-full"
	jobs := "0"
	chunk := "0"
	noSS, noGz, preload := false, false, false
	files, err := parseFlags(args,
		map[string]*string{"-o": &out, "-scheme": &scheme, "-j": &jobs, "-chunk": &chunk},
		map[string]*bool{"-no-stackstate": &noSS, "-no-gzip": &noGz, "-preload": &preload})
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return usagef("no input files")
	}
	s, err := schemeByName(scheme)
	if err != nil {
		return err
	}
	j, err := parseJobs(jobs)
	if err != nil {
		return err
	}
	chunkN, err := strconv.Atoi(chunk)
	if err != nil || chunkN < 0 {
		return usagef("invalid -chunk value %q (want an integer >= 0; 0 = monolithic version 2)", chunk)
	}
	opts := classpack.DefaultOptions()
	opts.Scheme = s
	opts.StackState = !noSS
	opts.Compress = !noGz
	opts.Preload = preload
	opts.Concurrency = j
	opts.ChunkClasses = chunkN
	classes, skipped, err := loadClassInputs(files)
	if err != nil {
		return err
	}
	for _, s := range skipped {
		fmt.Fprintf(os.Stderr, "jpack: skipping non-class member %s\n", s)
	}
	raw := 0
	for _, c := range classes {
		raw += len(c)
	}
	start := time.Now()
	packed, err := classpack.Pack(classes, &opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if err := os.WriteFile(out, packed, 0o644); err != nil {
		return err
	}
	fmt.Printf("packed %d classes: %d -> %d bytes (%.1f%%) in %v (%s)\n",
		len(classes), raw, len(packed), 100*float64(len(packed))/float64(raw),
		elapsed.Round(time.Millisecond), throughput(raw, elapsed))
	return nil
}

func cmdUnpack(args []string) error {
	dir := "."
	jarOut := ""
	jobs := "0"
	salvage := false
	files, err := parseFlags(args,
		map[string]*string{"-d": &dir, "-jar": &jarOut, "-j": &jobs},
		map[string]*bool{"-salvage": &salvage})
	if err != nil {
		return err
	}
	if len(files) != 1 {
		return usagef("unpack takes exactly one archive")
	}
	j, err := parseJobs(jobs)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		return err
	}
	if salvage {
		return salvageUnpack(data, dir, jarOut, j)
	}
	if jarOut != "" {
		start := time.Now()
		jar, err := classpack.UnpackToJarN(data, j)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		if err := os.WriteFile(jarOut, jar, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d -> %d bytes in %v (%s)\n",
			jarOut, len(data), len(jar), elapsed.Round(time.Millisecond),
			throughput(len(jar), elapsed))
		return nil
	}
	start := time.Now()
	out, err := classpack.UnpackN(data, j)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	total := 0
	for _, f := range out {
		total += len(f.Data)
	}
	for _, f := range out {
		path := filepath.Join(dir, filepath.FromSlash(f.Name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, f.Data, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("unpacked %d classes into %s: %d -> %d bytes in %v (%s)\n",
		len(out), dir, len(data), total, elapsed.Round(time.Millisecond),
		throughput(total, elapsed))
	return nil
}

// openArchiveFile opens a .cjp file for random access without reading
// the class bodies.
func openArchiveFile(path string, j int) (*os.File, *classpack.Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	opts := classpack.DefaultOptions()
	opts.Concurrency = j
	a, err := classpack.OpenArchive(f, st.Size(), &opts)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, a, nil
}

// cmdLs lists an archive's classes without decoding any class bodies
// (for a version-3 archive only the header and trailing index are
// read). Version-3 listings include per-chunk sizes.
func cmdLs(args []string) error {
	files, err := parseFlags(args, nil, nil)
	if err != nil {
		return err
	}
	if len(files) != 1 {
		return usagef("ls takes exactly one archive")
	}
	f, a, err := openArchiveFile(files[0], 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if chunks := a.Chunks(); chunks != nil {
		fmt.Printf("%s: version %d, %d classes, %d chunks (chunk size %d)\n",
			files[0], a.Version(), a.NumClasses(), len(chunks), a.ChunkClasses())
		for i, ch := range chunks {
			fmt.Printf("  chunk %d: %d classes, %d bytes\n", i, ch.Classes, ch.CompressedBytes)
		}
	} else {
		fmt.Printf("%s: version %d, %d classes\n", files[0], a.Version(), a.NumClasses())
	}
	for _, name := range a.ClassNames() {
		fmt.Println(name)
	}
	return nil
}

// cmdExtract pulls selected classes out of an archive, decoding only
// the chunks that hold them (version 3) instead of the whole archive.
func cmdExtract(args []string) error {
	dir := "."
	jarOut := ""
	jobs := "0"
	files, err := parseFlags(args,
		map[string]*string{"-d": &dir, "-jar": &jarOut, "-j": &jobs}, nil)
	if err != nil {
		return err
	}
	if len(files) < 2 {
		return usagef("extract takes an archive and at least one class name or pattern")
	}
	j, err := parseJobs(jobs)
	if err != nil {
		return err
	}
	f, a, err := openArchiveFile(files[0], j)
	if err != nil {
		return err
	}
	defer f.Close()
	// Selection and extraction go by ordinal so archives holding
	// duplicate class names still extract every matching occurrence.
	ords, err := a.SelectOrdinals(files[1:]...)
	if err != nil {
		return usageError{err}
	}
	if len(ords) == 0 {
		return fmt.Errorf("%s: no classes match %v", files[0], files[1:])
	}
	out, err := a.ExtractOrdinals(ords)
	if err != nil {
		return err
	}
	total := 0
	for _, of := range out {
		total += len(of.Data)
	}
	if jarOut != "" {
		jar, err := classpack.JarFromFiles(out)
		if err != nil {
			return err
		}
		if err := os.WriteFile(jarOut, jar, 0o644); err != nil {
			return err
		}
		fmt.Printf("extracted %d of %d classes into %s (%d bytes read of %d)\n",
			len(out), a.NumClasses(), jarOut, a.BytesRead(), archiveSize(f))
		return nil
	}
	for _, of := range out {
		path := filepath.Join(dir, filepath.FromSlash(of.Name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, of.Data, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("extracted %d of %d classes into %s: %d bytes (%d bytes read of %d)\n",
		len(out), a.NumClasses(), dir, total, a.BytesRead(), archiveSize(f))
	return nil
}

// cmdDelta handles `jpack delta old.cjp new.cjp -o patch.cjpd`: a CJPD
// patch carrying only the classes of new.cjp that old.cjp lacks; the
// rest are references the apply side copies from its own old archive.
func cmdDelta(args []string) error {
	out := "patch.cjpd"
	jobs := "0"
	files, err := parseFlags(args, map[string]*string{"-o": &out, "-j": &jobs}, nil)
	if err != nil {
		return err
	}
	if len(files) != 2 {
		return usagef("delta takes exactly two archives: old.cjp new.cjp")
	}
	j, err := parseJobs(jobs)
	if err != nil {
		return err
	}
	oldArc, err := os.ReadFile(files[0])
	if err != nil {
		return err
	}
	newArc, err := os.ReadFile(files[1])
	if err != nil {
		return err
	}
	opts := classpack.DefaultOptions()
	opts.Concurrency = j
	start := time.Now()
	patch, err := classpack.Diff(oldArc, newArc, &opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if err := os.WriteFile(out, patch, 0o644); err != nil {
		return err
	}
	sum, err := classpack.DescribeDelta(patch, &opts)
	if err != nil {
		return err
	}
	fmt.Printf("delta %s -> %s: %d of %d classes carried, %d copied; patch %d bytes (%.1f%% of %d) in %v\n",
		files[0], files[1], sum.PayloadClasses, sum.NewClasses, sum.CopiedClasses,
		len(patch), 100*float64(len(patch))/float64(len(newArc)), len(newArc),
		elapsed.Round(time.Millisecond))
	return nil
}

// cmdApply handles `jpack apply old.cjp patch.cjpd`: reconstruct the
// new archive from the old one plus a patch, verifying the result's
// digest against the one the patch records.
func cmdApply(args []string) error {
	out := "new.cjp"
	jobs := "0"
	files, err := parseFlags(args, map[string]*string{"-o": &out, "-j": &jobs}, nil)
	if err != nil {
		return err
	}
	if len(files) != 2 {
		return usagef("apply takes exactly an archive and a patch: old.cjp patch.cjpd")
	}
	j, err := parseJobs(jobs)
	if err != nil {
		return err
	}
	oldArc, err := os.ReadFile(files[0])
	if err != nil {
		return err
	}
	patch, err := os.ReadFile(files[1])
	if err != nil {
		return err
	}
	opts := classpack.DefaultOptions()
	opts.Concurrency = j
	start := time.Now()
	newArc, err := classpack.ApplyDelta(oldArc, patch, &opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if err := os.WriteFile(out, newArc, 0o644); err != nil {
		return err
	}
	fmt.Printf("applied %s to %s: %d-byte archive rebuilt into %s (digest verified) in %v\n",
		files[1], files[0], len(newArc), out, elapsed.Round(time.Millisecond))
	return nil
}

// archiveSize is the archive file's size, best effort (0 on error).
func archiveSize(f *os.File) int64 {
	st, err := f.Stat()
	if err != nil {
		return 0
	}
	return st.Size()
}

// salvageUnpack handles unpack -salvage: recover what a damaged archive
// still holds, write it out, report the damage, and exit nonzero when
// anything was lost.
func salvageUnpack(data []byte, dir, jarOut string, j int) error {
	opts := classpack.DefaultOptions()
	opts.Concurrency = j
	res, err := classpack.Salvage(data, &opts)
	if err != nil {
		return err
	}
	for _, d := range res.Damage {
		where := d.Stream
		if d.Offset >= 0 {
			where = fmt.Sprintf("%s@%d", d.Stream, d.Offset)
		}
		fmt.Fprintf(os.Stderr, "jpack: damage in %s: %s (%d classes lost)\n",
			where, d.Cause, d.ClassesLost)
	}
	if jarOut != "" {
		jar, err := res.Jar()
		if err != nil {
			return err
		}
		if err := os.WriteFile(jarOut, jar, 0o644); err != nil {
			return err
		}
	} else {
		for _, f := range res.Files {
			path := filepath.Join(dir, filepath.FromSlash(f.Name))
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(path, f.Data, 0o644); err != nil {
				return err
			}
		}
	}
	fmt.Printf("salvaged %d of %d classes (%d lost, %d damage regions)\n",
		res.Recovered, res.TotalClasses, res.Lost, len(res.Damage))
	if res.Lost > 0 {
		return fmt.Errorf("%d of %d classes lost to damage", res.Lost, res.TotalClasses)
	}
	return nil
}

func cmdStrip(args []string) error {
	out := ""
	files, err := parseFlags(args, map[string]*string{"-o": &out}, nil)
	if err != nil {
		return err
	}
	if len(files) != 1 {
		return usagef("strip takes exactly one class file")
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		return err
	}
	stripped, err := classpack.Strip(data)
	if err != nil {
		return err
	}
	if out == "" {
		out = files[0]
	}
	if err := os.WriteFile(out, stripped, 0o644); err != nil {
		return err
	}
	fmt.Printf("stripped %s: %d -> %d bytes\n", files[0], len(data), len(stripped))
	return nil
}

func cmdStats(args []string) error {
	files, err := parseFlags(args, nil, nil)
	if err != nil {
		return err
	}
	classes, _, err := loadClassInputs(files)
	if err != nil {
		return err
	}
	stats, err := classpack.PackStats(classes, nil)
	if err != nil {
		return err
	}
	total := stats.Strings + stats.Opcodes + stats.Ints + stats.Refs + stats.Misc
	fmt.Printf("packed archive composition (%d classes, %d bytes):\n", len(classes), total)
	show := func(label string, v int) {
		fmt.Printf("  %-8s %8d bytes  %5.1f%%\n", label, v, 100*float64(v)/float64(total))
	}
	show("strings", stats.Strings)
	show("opcodes", stats.Opcodes)
	show("ints", stats.Ints)
	show("refs", stats.Refs)
	show("misc", stats.Misc)
	return nil
}

func cmdVerify(args []string) error {
	deep := false
	bytecodeMode := false
	jobs := "0"
	maxFailures := "20"
	files, err := parseFlags(args,
		map[string]*string{"-j": &jobs, "-max-failures": &maxFailures},
		map[string]*bool{"-deep": &deep, "-bytecode": &bytecodeMode})
	if err != nil {
		return err
	}
	j, err := parseJobs(jobs)
	if err != nil {
		return err
	}
	limit, err := strconv.Atoi(maxFailures)
	if err != nil || limit < 0 {
		return usagef("invalid -max-failures value %q (want an integer >= 0, 0 = unlimited)", maxFailures)
	}
	inputs, skipped, err := loadNamedClassInputs(files)
	if err != nil {
		return err
	}
	for _, s := range skipped {
		fmt.Fprintf(os.Stderr, "jpack: skipping non-class member %s\n", s)
	}
	if inputs, err = expandArchives(inputs); err != nil {
		return err
	}
	if bytecodeMode {
		return verifyBytecode(inputs, limit)
	}
	contents := make([][]byte, len(inputs))
	for i, in := range inputs {
		contents[i] = in.data
	}
	// Verification fans out across classes; verdicts print in input
	// order, one per class, with the INVALID listing capped.
	errs := classpack.VerifyAll(contents, deep, j)
	bad := 0
	for i, in := range inputs {
		if errs[i] != nil {
			bad++
			if limit == 0 || bad <= limit {
				fmt.Printf("%s: INVALID: %v\n", in.name, errs[i])
			}
		} else {
			fmt.Printf("%s: ok\n", in.name)
		}
	}
	if limit > 0 && bad > limit {
		fmt.Printf("... and %d more invalid classes\n", bad-limit)
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d classes invalid", bad, len(inputs))
	}
	return nil
}

// expandArchives replaces any packed-archive input (CJP1 magic) with
// the class files it decodes to, so verify accepts .cjp archives
// alongside .class and .jar operands.
func expandArchives(inputs []classInput) ([]classInput, error) {
	out := inputs[:0]
	for _, in := range inputs {
		if len(in.data) < 4 || !bytes.Equal(in.data[:4], archiveMagic[:]) {
			out = append(out, in)
			continue
		}
		files, err := classpack.Unpack(in.data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", in.name, err)
		}
		for _, f := range files {
			out = append(out, classInput{in.name + "!" + f.Name, f.Data})
		}
	}
	return out, nil
}

// verifyBytecode runs the dataflow bytecode verifier over every method
// of every input, printing one verdict per method. The INVALID listing
// is capped by -max-failures like the per-class mode.
func verifyBytecode(inputs []classInput, limit int) error {
	classes, methods, bad := 0, 0, 0
	for _, in := range inputs {
		classes++
		verdicts, err := classpack.VerifyBytecode(in.data)
		if err != nil {
			bad++
			if limit == 0 || bad <= limit {
				fmt.Printf("%s: INVALID: %v\n", in.name, err)
			}
			continue
		}
		for _, v := range verdicts {
			methods++
			switch {
			case v.OK:
				fmt.Printf("%s: %s.%s%s: ok\n", in.name, v.Class, v.Method, v.Desc)
			case v.PC >= 0:
				bad++
				if limit == 0 || bad <= limit {
					fmt.Printf("%s: %s.%s%s: INVALID at pc %d (%s): %s\n",
						in.name, v.Class, v.Method, v.Desc, v.PC, v.Op, v.Err)
				}
			default:
				bad++
				if limit == 0 || bad <= limit {
					fmt.Printf("%s: %s.%s%s: INVALID: %s\n",
						in.name, v.Class, v.Method, v.Desc, v.Err)
				}
			}
		}
	}
	if limit > 0 && bad > limit {
		fmt.Printf("... and %d more failures\n", bad-limit)
	}
	if bad > 0 {
		return fmt.Errorf("%d verification failures across %d classes (%d methods)", bad, classes, methods)
	}
	fmt.Printf("%d classes, %d methods: all bytecode verified\n", classes, methods)
	return nil
}

func cmdDump(args []string) error {
	pool, code := false, false
	files, err := parseFlags(args, nil, map[string]*bool{"-pool": &pool, "-code": &code})
	if err != nil {
		return err
	}
	if !pool && !code {
		code = true
	}
	classes, _, err := loadClassInputs(files)
	if err != nil {
		return err
	}
	for _, data := range classes {
		cf, err := classfile.Parse(data)
		if err != nil {
			return err
		}
		if err := dump.Class(os.Stdout, cf, dump.Options{Pool: pool, Code: code}); err != nil {
			return err
		}
	}
	return nil
}
