package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"classpack/internal/archive"
	"classpack/internal/serve/client"
)

// serverURL resolves the jpackd base URL from -server or $JPACKD_SERVER.
func serverURL(flagValue string) (string, error) {
	if flagValue != "" {
		return flagValue, nil
	}
	if env := os.Getenv("JPACKD_SERVER"); env != "" {
		return env, nil
	}
	return "", usagef("no server: pass -server URL or set $JPACKD_SERVER")
}

// cmdRemote dispatches the remote subcommands, which delegate pack and
// unpack to a jpackd server instead of encoding locally.
func cmdRemote(args []string) error {
	if len(args) < 1 {
		return usagef("remote needs a subcommand: pack or unpack")
	}
	switch args[0] {
	case "pack":
		return cmdRemotePack(args[1:])
	case "unpack":
		return cmdRemoteUnpack(args[1:])
	default:
		return usagef("unknown remote subcommand %q (want pack or unpack)", args[0])
	}
}

// remoteInputJar turns the operands into the jar body POST /pack wants:
// a single .jar is sent as-is; loose .class files are wrapped into an
// in-memory jar named by their base filenames.
func remoteInputJar(paths []string) ([]byte, error) {
	if len(paths) == 1 && (strings.HasSuffix(paths[0], ".jar") || strings.HasSuffix(paths[0], ".zip")) {
		return os.ReadFile(paths[0])
	}
	var members []archive.File
	for _, path := range paths {
		if strings.HasSuffix(path, ".jar") || strings.HasSuffix(path, ".zip") {
			return nil, usagef("remote pack takes either one jar or loose .class files, not both")
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		members = append(members, archive.File{Name: filepath.Base(path), Data: data})
	}
	return archive.WriteJar(members)
}

func cmdRemotePack(args []string) error {
	out := "out.cjp"
	server := ""
	timeout := "300"
	files, err := parseFlags(args,
		map[string]*string{"-o": &out, "-server": &server, "-timeout": &timeout}, nil)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return usagef("no input files")
	}
	base, err := serverURL(server)
	if err != nil {
		return err
	}
	secs, err := parseJobs(timeout) // same shape: non-negative integer
	if err != nil {
		return usagef("invalid -timeout value %q (want seconds >= 0)", timeout)
	}
	jar, err := remoteInputJar(files)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if secs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(secs)*time.Second)
		defer cancel()
	}
	start := time.Now()
	res, err := client.New(base, nil).Pack(ctx, jar)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	for _, s := range res.Skipped {
		fmt.Fprintf(os.Stderr, "jpack: server skipped non-class member %s\n", s)
	}
	if err := os.WriteFile(out, res.Packed, 0o644); err != nil {
		return err
	}
	fmt.Printf("remote packed %d -> %d bytes (%.1f%%, cache %s) in %v\n  digest %s\n",
		len(jar), len(res.Packed), 100*float64(len(res.Packed))/float64(len(jar)),
		res.Cache, elapsed.Round(time.Millisecond), res.Digest)
	return nil
}

func cmdRemoteUnpack(args []string) error {
	server := ""
	jarOut := ""
	dir := ""
	files, err := parseFlags(args,
		map[string]*string{"-server": &server, "-jar": &jarOut, "-d": &dir}, nil)
	if err != nil {
		return err
	}
	if len(files) != 1 {
		return usagef("remote unpack takes exactly one archive")
	}
	if jarOut == "" && dir == "" {
		jarOut = "out.jar"
	}
	base, err := serverURL(server)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		return err
	}
	jar, err := client.New(base, nil).Unpack(context.Background(), data)
	if err != nil {
		return err
	}
	if jarOut != "" {
		if err := os.WriteFile(jarOut, jar, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d -> %d bytes\n", jarOut, len(data), len(jar))
		return nil
	}
	members, err := archive.ReadJar(jar)
	if err != nil {
		return err
	}
	for _, m := range members {
		path := filepath.Join(dir, filepath.FromSlash(m.Name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, m.Data, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("unpacked %d classes into %s\n", len(members), dir)
	return nil
}
