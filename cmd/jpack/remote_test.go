package main

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"

	"classpack/internal/archive"
	"classpack/internal/castore"
	"classpack/internal/serve"
)

// startJpackd runs an in-process jpackd on a loopback listener and
// returns its base URL.
func startJpackd(t *testing.T) string {
	t.Helper()
	st, err := castore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{Store: st})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("jpackd: %v", err)
		}
	})
	return "http://" + ln.Addr().String()
}

func TestRemotePackUnpackFlow(t *testing.T) {
	classes, jarPath := writeClasses(t)
	url := startJpackd(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "app.cjp")

	if got := run([]string{"remote", "pack", "-server", url, "-o", out, jarPath}); got != exitOK {
		t.Fatalf("remote pack = %d", got)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("remote pack wrote nothing: %v", err)
	}
	// Second pack of the same jar exercises the server's cache-hit path.
	if got := run([]string{"remote", "pack", "-server", url, "-o", out, jarPath}); got != exitOK {
		t.Fatalf("second remote pack = %d", got)
	}

	outJar := filepath.Join(dir, "rebuilt.jar")
	if got := run([]string{"remote", "unpack", "-server", url, "-jar", outJar, out}); got != exitOK {
		t.Fatalf("remote unpack = %d", got)
	}
	data, err := os.ReadFile(outJar)
	if err != nil {
		t.Fatal(err)
	}
	members, err := archive.ReadJar(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != len(classes) {
		t.Fatalf("rebuilt jar has %d members, want %d", len(members), len(classes))
	}

	// Directory extraction path.
	unDir := filepath.Join(dir, "un")
	if got := run([]string{"remote", "unpack", "-server", url, "-d", unDir, out}); got != exitOK {
		t.Fatalf("remote unpack -d = %d", got)
	}
	if _, err := os.Stat(filepath.Join(unDir, "Main.class")); err != nil {
		t.Fatal(err)
	}

	// Loose .class operands get wrapped into a jar client-side.
	if got := run(append([]string{"remote", "pack", "-server", url,
		"-o", filepath.Join(dir, "loose.cjp")}, classes...)); got != exitOK {
		t.Fatalf("remote pack of loose classes = %d", got)
	}

	// $JPACKD_SERVER works in place of -server.
	t.Setenv("JPACKD_SERVER", url)
	if got := run([]string{"remote", "pack", "-o", filepath.Join(dir, "env.cjp"), jarPath}); got != exitOK {
		t.Fatalf("remote pack via env = %d", got)
	}

	// An unreachable server is an operational failure (1), not usage (2).
	if got := run([]string{"remote", "unpack", "-server", "http://127.0.0.1:1",
		"-jar", filepath.Join(dir, "x.jar"), out}); got != exitFailure {
		t.Fatalf("remote unpack against dead server = %d, want %d", got, exitFailure)
	}
}
