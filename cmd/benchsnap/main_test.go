package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: classpack
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPackThroughput/j=1         	     195	  13715845 ns/op	   2.20 MB/s	 5555695 B/op	   28401 allocs/op
BenchmarkPackThroughput/j=1         	     200	  13000000 ns/op	   2.40 MB/s	 5555000 B/op	   28400 allocs/op
BenchmarkPackThroughput/j=1         	     190	  14000000 ns/op	   2.30 MB/s	 5556000 B/op	   28402 allocs/op
BenchmarkTable1 	   32608	     40063 ns/op
BenchmarkTable1 	   32000	     41000 ns/op
BenchmarkTable1 	   33000	     39000 ns/op
BenchmarkAblationDefault-4 	      10	 100000000 ns/op	 12345 packed-bytes
PASS
`

func TestParseBenchOutput(t *testing.T) {
	results, err := parseBenchOutput(sampleOutput)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %+v", len(results), results)
	}
	pack := results[0]
	if pack.Name != "PackThroughput/j=1" {
		t.Errorf("name = %q", pack.Name)
	}
	if pack.Samples != 3 {
		t.Errorf("samples = %d, want 3", pack.Samples)
	}
	if pack.NsPerOp != 13715845 {
		t.Errorf("median ns/op = %v, want 13715845", pack.NsPerOp)
	}
	if pack.MBPerS != 2.30 {
		t.Errorf("median MB/s = %v, want 2.30", pack.MBPerS)
	}
	if pack.AllocsPerOp != 28401 {
		t.Errorf("median allocs/op = %v, want 28401", pack.AllocsPerOp)
	}
	table := results[1]
	if table.Name != "Table1" || table.NsPerOp != 40063 || table.MBPerS != 0 {
		t.Errorf("Table1 = %+v", table)
	}
	// The -GOMAXPROCS suffix is stripped and custom metrics land in Extra.
	abl := results[2]
	if abl.Name != "AblationDefault" {
		t.Errorf("name = %q, want AblationDefault", abl.Name)
	}
	if abl.Extra["packed-bytes"] != 12345 {
		t.Errorf("extra = %+v", abl.Extra)
	}
}

func snap(results []Benchmark) *Snapshot {
	return &Snapshot{
		Schema: Schema, UTCDate: "2026-08-08", GitSHA: "abc1234",
		GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64",
		Samples: 3, Bench: defaultBench, Results: results,
	}
}

func TestValidate(t *testing.T) {
	good := snap([]Benchmark{{Name: "PackThroughput/j=1", Samples: 3, NsPerOp: 1e7, MBPerS: 2.3}})
	if err := validate(good); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Snapshot)
	}{
		{"wrong schema", func(s *Snapshot) { s.Schema = "other/v9" }},
		{"bad date", func(s *Snapshot) { s.UTCDate = "08/08/2026" }},
		{"missing sha", func(s *Snapshot) { s.GitSHA = "" }},
		{"zero samples", func(s *Snapshot) { s.Samples = 0 }},
		{"no benchmarks", func(s *Snapshot) { s.Results = nil }},
		{"empty name", func(s *Snapshot) { s.Results[0].Name = "" }},
		{"zero ns/op", func(s *Snapshot) { s.Results[0].NsPerOp = 0 }},
		{"duplicate name", func(s *Snapshot) { s.Results = append(s.Results, s.Results[0]) }},
	} {
		s := snap([]Benchmark{{Name: "PackThroughput/j=1", Samples: 3, NsPerOp: 1e7}})
		tc.mutate(s)
		if err := validate(s); err == nil {
			t.Errorf("%s: validate accepted a broken snapshot", tc.name)
		}
	}
}

func writeSnap(t *testing.T, dir, name string, s *Snapshot) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(mustJSON(s)), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func mustJSON(s *Snapshot) string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err)
	}
	return string(b)
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", snap([]Benchmark{
		{Name: "PackThroughput/j=1", Samples: 3, NsPerOp: 1e7, MBPerS: 2.0, AllocsPerOp: 28000, BytesPerOp: 5.5e6},
		{Name: "Table1", Samples: 3, NsPerOp: 40000},
	}))

	// Improvement passes.
	better := writeSnap(t, dir, "better.json", snap([]Benchmark{
		{Name: "PackThroughput/j=1", Samples: 3, NsPerOp: 5e6, MBPerS: 4.0, AllocsPerOp: 9000, BytesPerOp: 3e6},
		{Name: "Table1", Samples: 3, NsPerOp: 39000},
	}))
	if ok, err := compareFiles(devNull(t), oldPath, better); err != nil || !ok {
		t.Errorf("improvement flagged as regression: ok=%v err=%v", ok, err)
	}

	// >10% MB/s loss fails.
	worse := writeSnap(t, dir, "worse.json", snap([]Benchmark{
		{Name: "PackThroughput/j=1", Samples: 3, NsPerOp: 1.3e7, MBPerS: 1.5},
		{Name: "Table1", Samples: 3, NsPerOp: 40000},
	}))
	if ok, err := compareFiles(devNull(t), oldPath, worse); err != nil || ok {
		t.Errorf("regression not flagged: ok=%v err=%v", ok, err)
	}

	// >10% ns/op growth on a benchmark without MB/s fails.
	slowTable := writeSnap(t, dir, "slowtable.json", snap([]Benchmark{
		{Name: "PackThroughput/j=1", Samples: 3, NsPerOp: 1e7, MBPerS: 2.0},
		{Name: "Table1", Samples: 3, NsPerOp: 50000},
	}))
	if ok, err := compareFiles(devNull(t), oldPath, slowTable); err != nil || ok {
		t.Errorf("ns/op regression not flagged: ok=%v err=%v", ok, err)
	}

	// A small (<10%) wobble passes.
	wobble := writeSnap(t, dir, "wobble.json", snap([]Benchmark{
		{Name: "PackThroughput/j=1", Samples: 3, NsPerOp: 1.05e7, MBPerS: 1.91},
		{Name: "Table1", Samples: 3, NsPerOp: 41000},
	}))
	if ok, err := compareFiles(devNull(t), oldPath, wobble); err != nil || !ok {
		t.Errorf("within-tolerance wobble flagged: ok=%v err=%v", ok, err)
	}
}

func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestRecordSmokeCheck(t *testing.T) {
	// End-to-end schema stability: a recorded file round-trips through
	// -check. Uses the parse+write paths without running go test.
	dir := t.TempDir()
	path := writeSnap(t, dir, "BENCH_2026-08-08_abc1234.json", snap([]Benchmark{
		{Name: "UnpackThroughput/j=1", Samples: 3, NsPerOp: 6e6, MBPerS: 4.7, AllocsPerOp: 15651, BytesPerOp: 4.9e6},
	}))
	if schema, err := checkFile(path); err != nil || schema != Schema {
		t.Fatalf("checkFile: schema %q, err %v", schema, err)
	}
	if _, err := checkFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("checkFile accepted a missing file")
	}
	bad := strings.Replace(mustJSON(snap([]Benchmark{{Name: "X", Samples: 1, NsPerOp: 1}})),
		Schema, "not-a-schema", 1)
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := checkFile(badPath); err == nil {
		t.Fatal("checkFile accepted a wrong schema")
	}
}

func TestRatioSnapshotCheck(t *testing.T) {
	// The ratio schema round-trips through the shared -check entry.
	dir := t.TempDir()
	rs := RatioSnapshot{
		Schema:  RatioSchema,
		UTCDate: "2026-08-08",
		GitSHA:  "abc1234",
		Scale:   1.0,
		Corpora: []CorpusRatio{{
			Name: "202_jess", Classes: 67, InputBytes: 250000, V2Bytes: 60000,
			Chunked: []ChunkRatio{{ChunkClasses: 64, Bytes: 61000, OverheadVsV2: 0.016}},
		}},
	}
	data, err := json.MarshalIndent(&rs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_2026-08-08_abc1234_ratio.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if schema, err := checkFile(path); err != nil || schema != RatioSchema {
		t.Fatalf("checkFile: schema %q, err %v", schema, err)
	}
	// An incomplete corpus record fails validation.
	rs.Corpora[0].Chunked = nil
	data, _ = json.MarshalIndent(&rs, "", "  ")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := checkFile(path); err == nil {
		t.Fatal("checkFile accepted a ratio snapshot with no chunked measurements")
	}
}

func TestDeltaSnapshotCheck(t *testing.T) {
	// The delta schema round-trips through the shared -check entry.
	dir := t.TempDir()
	ds := DeltaSnapshot{
		Schema:       DeltaSchema,
		UTCDate:      "2026-08-08",
		GitSHA:       "abc1234",
		Scale:        1.0,
		ChangeRate:   0.05,
		ChunkClasses: 64,
		Corpora: []CorpusDelta{{
			Name: "209_db", Classes: 120, ChangedClasses: 6,
			OldBytes: 61000, NewBytes: 61100, PatchBytes: 9000,
			PatchVsFull: 0.147,
		}},
	}
	write := func() string {
		t.Helper()
		data, err := json.MarshalIndent(&ds, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "BENCH_2026-08-08_abc1234_delta.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	path := write()
	if schema, err := checkFile(path); err != nil || schema != DeltaSchema {
		t.Fatalf("checkFile: schema %q, err %v", schema, err)
	}
	// A bump that changed nothing is not a measurement.
	ds.Corpora[0].ChangedClasses = 0
	if _, err := checkFile(write()); err == nil {
		t.Fatal("checkFile accepted a delta snapshot with zero changed classes")
	}
	ds.Corpora[0].ChangedClasses = 6
	// A patch as large as the archive means the diff path is broken.
	ds.Corpora[0].PatchVsFull = 1.2
	if _, err := checkFile(write()); err == nil {
		t.Fatal("checkFile accepted patch_vs_full > 1")
	}
	ds.Corpora[0].PatchVsFull = 0.147
	ds.ChangeRate = 0
	if _, err := checkFile(write()); err == nil {
		t.Fatal("checkFile accepted a zero change_rate")
	}
}

func TestRecordDeltaSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("packs real corpora; skipped in -short")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "delta.json")
	// Small scale keeps the smoke fast; the committed snapshots use 1.0.
	path, err := recordDelta(".", 0.25, 0.05, "", out)
	if err != nil {
		t.Fatal(err)
	}
	if schema, err := checkFile(path); err != nil || schema != DeltaSchema {
		t.Fatalf("checkFile: schema %q, err %v", schema, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ds DeltaSnapshot
	if err := json.Unmarshal(data, &ds); err != nil {
		t.Fatal(err)
	}
	for _, c := range ds.Corpora {
		if c.PatchVsFull > 0.25 {
			t.Errorf("%s: patch is %.1f%% of the full archive, want <= 25%%",
				c.Name, 100*c.PatchVsFull)
		}
	}
}
