// Command benchsnap records, validates, and compares benchmark
// snapshots for the codec hot path.
//
// Recording mode (the default) runs the throughput and Table benchmarks
// through `go test -bench` with -count=N so every benchmark yields N
// samples inside one process (corpora are cached per process, so the
// samples time the codec, not corpus synthesis). It then writes the
// per-benchmark medians to a schema-stable JSON snapshot named
// BENCH_<utc-date>_<git-sha>[_<tag>].json. Committed snapshots form the
// recorded benchmark trajectory that perf PRs are gated on.
//
//	benchsnap                       # record BENCH_<date>_<sha>.json
//	benchsnap -tag after -n 7       # record BENCH_<date>_<sha>_after.json
//	benchsnap -check FILE           # validate a snapshot's schema
//	benchsnap -compare OLD NEW      # delta table; exit 1 on regression
//	benchsnap -ratio                # record BENCH_<date>_<sha>_ratio.json
//	benchsnap -delta                # record BENCH_<date>_<sha>_delta.json
//
// Compare mode prints a per-benchmark delta table and exits non-zero
// when any benchmark's throughput regresses by more than 10% (MB/s when
// reported, otherwise ns/op).
//
// Ratio mode records a compression-ratio snapshot instead of timings:
// it packs the bench corpora as monolithic version-2 archives and as
// version-3 chunked archives at several chunk sizes, and writes the
// sizes plus the per-chunk-size overhead to a
// "classpack-ratiosnap/v1" JSON file. Committed ratio snapshots pin
// what random access costs in compression.
//
// Delta mode records a patch-size snapshot for the cross-archive delta
// path: each bench corpus is packed, mutated into a synthetic "next
// release" (each class independently changed with probability
// -delta-rate), re-packed, and diffed with classpack.Diff. The patch is
// verified by applying it (ApplyDelta must reproduce the new archive
// byte-for-byte) before its size lands in a "classpack-deltasnap/v1"
// JSON file. Committed delta snapshots pin the bandwidth saved by
// shipping patches instead of full archives. -check validates all three
// schemas.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"classpack"
	"classpack/internal/bench"
	"classpack/internal/synth"
)

// Schema is the identifier every snapshot carries; bump only with a
// documented migration in DESIGN.md.
const Schema = "classpack-benchsnap/v1"

// defaultBench selects the benchmarks a snapshot records: the
// end-to-end throughput pair (the gate metrics) plus the Table
// experiments, so ratio-affecting regressions show up in the same file.
const defaultBench = "^Benchmark(PackThroughput|UnpackThroughput|Table[1-8])$"

// regressionLimit is the relative throughput loss -compare tolerates.
const regressionLimit = 0.10

// Snapshot is the stable on-disk schema. Field names and meanings are
// frozen; additions must be backwards-compatible (new optional fields).
type Snapshot struct {
	Schema    string      `json:"schema"`
	UTCDate   string      `json:"utc_date"` // YYYY-MM-DD, UTC
	GitSHA    string      `json:"git_sha"`  // short commit hash
	Tag       string      `json:"tag,omitempty"`
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	Samples   int         `json:"samples"` // -count passed to go test
	Bench     string      `json:"bench"`   // -bench regexp used
	Results   []Benchmark `json:"benchmarks"`
}

// Benchmark holds the median of each metric across a benchmark's
// samples. Zero-valued optional metrics are omitted: Table benchmarks
// report only ns/op, throughput benchmarks report all four.
type Benchmark struct {
	Name        string             `json:"name"` // without "Benchmark" prefix
	Samples     int                `json:"samples"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerS      float64            `json:"mb_per_s,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"` // custom b.ReportMetric units
}

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("benchsnap", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 5, "samples per benchmark (go test -count)")
		bench     = fs.String("bench", defaultBench, "benchmark selection regexp (go test -bench)")
		benchtime = fs.String("benchtime", "", "per-sample budget (go test -benchtime), empty = go default")
		tag       = fs.String("tag", "", "optional snapshot label appended to the file name")
		out       = fs.String("out", "", "output path (default BENCH_<utc-date>_<git-sha>[_<tag>].json)")
		dir       = fs.String("dir", ".", "package directory containing the benchmarks")
		check     = fs.String("check", "", "validate the snapshot FILE and exit")
		compare   = fs.Bool("compare", false, "compare two snapshots: benchsnap -compare OLD NEW")
		ratio     = fs.Bool("ratio", false, "record a v2-vs-v3 compression-ratio snapshot instead of timings")
		ratioScl  = fs.Float64("ratio-scale", 1.0, "corpus scale for -ratio")
		delta     = fs.Bool("delta", false, "record a delta-patch-size snapshot instead of timings")
		deltaScl  = fs.Float64("delta-scale", 1.0, "corpus scale for -delta")
		deltaRate = fs.Float64("delta-rate", 0.05, "per-class mutation probability for -delta")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *ratio:
		path, err := recordRatio(*dir, *ratioScl, *tag, *out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", path)
		return 0
	case *delta:
		path, err := recordDelta(*dir, *deltaScl, *deltaRate, *tag, *out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", path)
		return 0
	case *check != "":
		schema, err := checkFile(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
			return 1
		}
		fmt.Printf("%s: valid %s snapshot\n", *check, schema)
		return 0
	case *compare:
		if fs.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchsnap -compare OLD.json NEW.json")
			return 2
		}
		ok, err := compareFiles(os.Stdout, fs.Arg(0), fs.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
			return 1
		}
		if !ok {
			return 1
		}
		return 0
	default:
		path, err := record(*dir, *bench, *benchtime, *tag, *out, *n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", path)
		return 0
	}
}

// record runs the benchmarks and writes the snapshot, returning its path.
func record(dir, bench, benchtime, tag, out string, n int) (string, error) {
	if n < 1 {
		return "", fmt.Errorf("-n must be >= 1")
	}
	goTool := os.Getenv("GO")
	if goTool == "" {
		goTool = "go"
	}
	cmdArgs := []string{"test", "-run", "^$", "-bench", bench, "-benchmem",
		"-count", strconv.Itoa(n)}
	if benchtime != "" {
		cmdArgs = append(cmdArgs, "-benchtime", benchtime)
	}
	cmdArgs = append(cmdArgs, ".")
	cmd := exec.Command(goTool, cmdArgs...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go test -bench: %w\n%s", err, raw)
	}
	results, err := parseBenchOutput(string(raw))
	if err != nil {
		return "", err
	}
	if len(results) == 0 {
		return "", fmt.Errorf("no benchmarks matched %q", bench)
	}
	snap := Snapshot{
		Schema:    Schema,
		UTCDate:   time.Now().UTC().Format("2006-01-02"),
		GitSHA:    gitShortSHA(dir),
		Tag:       tag,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Samples:   n,
		Bench:     bench,
		Results:   results,
	}
	if out == "" {
		name := "BENCH_" + snap.UTCDate + "_" + snap.GitSHA
		if tag != "" {
			name += "_" + tag
		}
		out = filepath.Join(dir, name+".json")
	}
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return "", err
	}
	return out, nil
}

// gitShortSHA best-effort resolves the current commit; snapshots taken
// outside a checkout record "unknown" rather than failing.
func gitShortSHA(dir string) string {
	cmd := exec.Command("git", "rev-parse", "--short", "HEAD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// benchLine matches one `go test -bench` result line: the benchmark
// name, the iteration count, then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.+)$`)

// parseBenchOutput folds the repeated samples of each benchmark (from
// -count) into per-metric medians, preserving first-seen name order.
func parseBenchOutput(out string) ([]Benchmark, error) {
	samples := map[string]map[string][]float64{} // name -> unit -> values
	var order []string
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		// Trim the -GOMAXPROCS suffix go appends when procs > 1.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		fields := strings.Fields(m[2])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("odd metric fields in line %q", line)
		}
		if samples[name] == nil {
			samples[name] = map[string][]float64{}
			order = append(order, name)
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in line %q: %v", line, err)
			}
			unit := fields[i+1]
			samples[name][unit] = append(samples[name][unit], v)
		}
	}
	var results []Benchmark
	for _, name := range order {
		b := Benchmark{Name: name}
		for unit, vals := range samples[name] {
			if len(vals) > b.Samples {
				b.Samples = len(vals)
			}
			med := median(vals)
			switch unit {
			case "ns/op":
				b.NsPerOp = med
			case "MB/s":
				b.MBPerS = med
			case "B/op":
				b.BytesPerOp = med
			case "allocs/op":
				b.AllocsPerOp = med
			default:
				if b.Extra == nil {
					b.Extra = map[string]float64{}
				}
				b.Extra[unit] = med
			}
		}
		results = append(results, b)
	}
	return results, nil
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// load reads and schema-validates one snapshot.
func load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if err := validate(&s); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &s, nil
}

// validate enforces the parts of the schema later tooling depends on.
func validate(s *Snapshot) error {
	if s.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", s.Schema, Schema)
	}
	if _, err := time.Parse("2006-01-02", s.UTCDate); err != nil {
		return fmt.Errorf("utc_date %q: want YYYY-MM-DD", s.UTCDate)
	}
	if s.GitSHA == "" {
		return fmt.Errorf("missing git_sha")
	}
	if s.Samples < 1 {
		return fmt.Errorf("samples %d: want >= 1", s.Samples)
	}
	if len(s.Results) == 0 {
		return fmt.Errorf("no benchmarks recorded")
	}
	seen := map[string]bool{}
	for _, b := range s.Results {
		if b.Name == "" {
			return fmt.Errorf("benchmark with empty name")
		}
		if seen[b.Name] {
			return fmt.Errorf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if b.NsPerOp <= 0 {
			return fmt.Errorf("benchmark %q: ns_per_op %v, want > 0", b.Name, b.NsPerOp)
		}
	}
	return nil
}

func checkFile(path string) (schema string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("%s: %v", path, err)
	}
	if probe.Schema == RatioSchema {
		return RatioSchema, checkRatioFile(path)
	}
	if probe.Schema == DeltaSchema {
		return DeltaSchema, checkDeltaFile(path)
	}
	_, err = load(path)
	return Schema, err
}

// RatioSchema identifies v2-vs-v3 compression-ratio snapshots; bump
// only with a documented migration in DESIGN.md.
const RatioSchema = "classpack-ratiosnap/v1"

// ratioChunkSizes are the version-3 chunk sizes every ratio snapshot
// measures, bracketing the DefaultChunkClasses = 64 shipping value.
var ratioChunkSizes = []int{16, 64, 256}

// ratioCorpora are the profiles a ratio snapshot packs: the three
// SPECjvm-style corpora the paper's tables lean on.
var ratioCorpora = []string{"202_jess", "209_db", "213_javac"}

// RatioSnapshot is the stable on-disk schema of a -ratio run.
type RatioSnapshot struct {
	Schema  string        `json:"schema"`
	UTCDate string        `json:"utc_date"`
	GitSHA  string        `json:"git_sha"`
	Tag     string        `json:"tag,omitempty"`
	Scale   float64       `json:"scale"` // corpus scale packed
	Corpora []CorpusRatio `json:"corpora"`
}

// CorpusRatio is one corpus's measurements: the monolithic version-2
// baseline and the version-3 size at each chunk size.
type CorpusRatio struct {
	Name       string       `json:"name"`
	Classes    int          `json:"classes"`
	InputBytes int64        `json:"input_bytes"` // stripped class bytes summed
	V2Bytes    int64        `json:"v2_bytes"`
	Chunked    []ChunkRatio `json:"chunked"`
}

// ChunkRatio is one (chunk size, archive size) point, with the relative
// growth over the version-2 baseline.
type ChunkRatio struct {
	ChunkClasses int     `json:"chunk_classes"`
	Bytes        int64   `json:"bytes"`
	OverheadVsV2 float64 `json:"overhead_vs_v2"` // (v3 - v2) / v2
}

// recordRatio packs each corpus under every layout and writes the
// snapshot. Packing happens in-process — archive sizes are deterministic
// at every worker count, so no go-test indirection is needed.
func recordRatio(dir string, scale float64, tag, out string) (string, error) {
	snap := RatioSnapshot{
		Schema:  RatioSchema,
		UTCDate: time.Now().UTC().Format("2006-01-02"),
		GitSHA:  gitShortSHA(dir),
		Tag:     tag,
		Scale:   scale,
	}
	for _, name := range ratioCorpora {
		c, err := bench.Load(name, scale)
		if err != nil {
			return "", err
		}
		raw := make([][]byte, len(c.StrippedFiles))
		cr := CorpusRatio{Name: name, Classes: len(raw)}
		for i, f := range c.StrippedFiles {
			raw[i] = f.Data
			cr.InputBytes += int64(len(f.Data))
		}
		opts := classpack.DefaultOptions()
		v2, err := classpack.Pack(raw, &opts)
		if err != nil {
			return "", fmt.Errorf("%s: v2 pack: %w", name, err)
		}
		cr.V2Bytes = int64(len(v2))
		for _, n := range ratioChunkSizes {
			opts.ChunkClasses = n
			v3, err := classpack.Pack(raw, &opts)
			if err != nil {
				return "", fmt.Errorf("%s: v3 pack (chunk %d): %w", name, n, err)
			}
			cr.Chunked = append(cr.Chunked, ChunkRatio{
				ChunkClasses: n,
				Bytes:        int64(len(v3)),
				OverheadVsV2: float64(len(v3)-len(v2)) / float64(len(v2)),
			})
		}
		snap.Corpora = append(snap.Corpora, cr)
	}
	if out == "" {
		name := "BENCH_" + snap.UTCDate + "_" + snap.GitSHA
		if tag != "" {
			name += "_" + tag
		}
		out = filepath.Join(dir, name+"_ratio.json")
	}
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return "", err
	}
	return out, nil
}

// checkRatioFile validates the parts of the ratio schema later tooling
// depends on.
func checkRatioFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var s RatioSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if s.Schema != RatioSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, s.Schema, RatioSchema)
	}
	if _, err := time.Parse("2006-01-02", s.UTCDate); err != nil {
		return fmt.Errorf("%s: utc_date %q: want YYYY-MM-DD", path, s.UTCDate)
	}
	if s.GitSHA == "" {
		return fmt.Errorf("%s: missing git_sha", path)
	}
	if len(s.Corpora) == 0 {
		return fmt.Errorf("%s: no corpora recorded", path)
	}
	for _, c := range s.Corpora {
		if c.Name == "" || c.Classes < 1 || c.V2Bytes < 1 {
			return fmt.Errorf("%s: corpus %q: incomplete record", path, c.Name)
		}
		if len(c.Chunked) == 0 {
			return fmt.Errorf("%s: corpus %q: no chunked measurements", path, c.Name)
		}
		for _, ch := range c.Chunked {
			if ch.ChunkClasses < 1 || ch.Bytes < 1 {
				return fmt.Errorf("%s: corpus %q: bad chunk point %+v", path, c.Name, ch)
			}
		}
	}
	return nil
}

// DeltaSchema identifies cross-archive delta-patch-size snapshots; bump
// only with a documented migration in DESIGN.md.
const DeltaSchema = "classpack-deltasnap/v1"

// deltaChunkClasses is the version-3 layout every delta snapshot packs:
// the DefaultChunkClasses shipping value, so the recorded patch sizes
// match what jpack and jpackd produce by default.
const deltaChunkClasses = 64

// deltaSeed makes the synthetic version bump reproducible: the same
// corpus and rate always change the same classes, so snapshots taken at
// different commits are comparable.
const deltaSeed = 1999 // the paper's publication year, for want of a better constant

// deltaCorpora are the profiles a delta snapshot diffs. Unlike the
// ratio corpora they must be large enough that a 5% class-change rate
// selects whole classes — 209_db is 3 classes, where the minimum
// one-class bump is already a 33% change — so the small ratio corpus is
// swapped for the ~400-class tools profile.
var deltaCorpora = []string{"202_jess", "213_javac", "tools"}

// DeltaSnapshot is the stable on-disk schema of a -delta run.
type DeltaSnapshot struct {
	Schema       string        `json:"schema"`
	UTCDate      string        `json:"utc_date"`
	GitSHA       string        `json:"git_sha"`
	Tag          string        `json:"tag,omitempty"`
	Scale        float64       `json:"scale"`         // corpus scale packed
	ChangeRate   float64       `json:"change_rate"`   // per-class mutation probability
	ChunkClasses int           `json:"chunk_classes"` // v3 layout both versions were packed with
	Corpora      []CorpusDelta `json:"corpora"`
}

// CorpusDelta is one corpus's measurement: the two full archives of a
// synthetic version bump and the size of the CJPD patch between them.
type CorpusDelta struct {
	Name           string  `json:"name"`
	Classes        int     `json:"classes"`
	ChangedClasses int     `json:"changed_classes"`
	OldBytes       int64   `json:"old_bytes"`
	NewBytes       int64   `json:"new_bytes"`
	PatchBytes     int64   `json:"patch_bytes"`
	PatchVsFull    float64 `json:"patch_vs_full"` // patch / new, the bandwidth ratio
}

// recordDelta packs each corpus twice across a synthetic version bump,
// diffs the pair, verifies the patch applies back to the exact new
// archive, and writes the snapshot. Everything runs in-process — patch
// bytes are deterministic at every worker count, so no go-test
// indirection is needed.
func recordDelta(dir string, scale, rate float64, tag, out string) (string, error) {
	if rate <= 0 || rate > 1 {
		return "", fmt.Errorf("-delta-rate %v: want in (0, 1]", rate)
	}
	snap := DeltaSnapshot{
		Schema:       DeltaSchema,
		UTCDate:      time.Now().UTC().Format("2006-01-02"),
		GitSHA:       gitShortSHA(dir),
		Tag:          tag,
		Scale:        scale,
		ChangeRate:   rate,
		ChunkClasses: deltaChunkClasses,
	}
	opts := classpack.DefaultOptions()
	opts.ChunkClasses = deltaChunkClasses
	for _, name := range deltaCorpora {
		c, err := bench.Load(name, scale)
		if err != nil {
			return "", err
		}
		raw := make([][]byte, len(c.StrippedFiles))
		for i, f := range c.StrippedFiles {
			raw[i] = f.Data
		}
		oldArc, err := classpack.Pack(raw, &opts)
		if err != nil {
			return "", fmt.Errorf("%s: old pack: %w", name, err)
		}
		bumped, changed, err := synth.MutateClasses(raw, rate, deltaSeed)
		if err != nil {
			return "", fmt.Errorf("%s: version bump: %w", name, err)
		}
		newArc, err := classpack.Pack(bumped, &opts)
		if err != nil {
			return "", fmt.Errorf("%s: new pack: %w", name, err)
		}
		patch, err := classpack.Diff(oldArc, newArc, &opts)
		if err != nil {
			return "", fmt.Errorf("%s: diff: %w", name, err)
		}
		// A snapshot must never record a patch that does not round-trip.
		applied, err := classpack.ApplyDelta(oldArc, patch, &opts)
		if err != nil {
			return "", fmt.Errorf("%s: apply: %w", name, err)
		}
		if !bytes.Equal(applied, newArc) {
			return "", fmt.Errorf("%s: applied patch differs from the new archive", name)
		}
		snap.Corpora = append(snap.Corpora, CorpusDelta{
			Name:           name,
			Classes:        len(raw),
			ChangedClasses: changed,
			OldBytes:       int64(len(oldArc)),
			NewBytes:       int64(len(newArc)),
			PatchBytes:     int64(len(patch)),
			PatchVsFull:    float64(len(patch)) / float64(len(newArc)),
		})
	}
	if out == "" {
		name := "BENCH_" + snap.UTCDate + "_" + snap.GitSHA
		if tag != "" {
			name += "_" + tag
		}
		out = filepath.Join(dir, name+"_delta.json")
	}
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return "", err
	}
	return out, nil
}

// checkDeltaFile validates the parts of the delta schema later tooling
// depends on.
func checkDeltaFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var s DeltaSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if s.Schema != DeltaSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, s.Schema, DeltaSchema)
	}
	if _, err := time.Parse("2006-01-02", s.UTCDate); err != nil {
		return fmt.Errorf("%s: utc_date %q: want YYYY-MM-DD", path, s.UTCDate)
	}
	if s.GitSHA == "" {
		return fmt.Errorf("%s: missing git_sha", path)
	}
	if s.ChangeRate <= 0 || s.ChangeRate > 1 {
		return fmt.Errorf("%s: change_rate %v: want in (0, 1]", path, s.ChangeRate)
	}
	if s.ChunkClasses < 1 {
		return fmt.Errorf("%s: chunk_classes %d: want >= 1", path, s.ChunkClasses)
	}
	if len(s.Corpora) == 0 {
		return fmt.Errorf("%s: no corpora recorded", path)
	}
	for _, c := range s.Corpora {
		if c.Name == "" || c.Classes < 1 || c.OldBytes < 1 || c.NewBytes < 1 || c.PatchBytes < 1 {
			return fmt.Errorf("%s: corpus %q: incomplete record", path, c.Name)
		}
		if c.ChangedClasses < 1 || c.ChangedClasses > c.Classes {
			return fmt.Errorf("%s: corpus %q: changed_classes %d of %d classes", path, c.Name, c.ChangedClasses, c.Classes)
		}
		if c.PatchVsFull <= 0 || c.PatchVsFull > 1 {
			return fmt.Errorf("%s: corpus %q: patch_vs_full %v: want in (0, 1]", path, c.Name, c.PatchVsFull)
		}
	}
	return nil
}

// compareFiles prints a delta table between two snapshots and reports
// whether the new one is free of >10% throughput regressions.
func compareFiles(w *os.File, oldPath, newPath string) (ok bool, err error) {
	oldSnap, err := load(oldPath)
	if err != nil {
		return false, err
	}
	newSnap, err := load(newPath)
	if err != nil {
		return false, err
	}
	oldBy := map[string]Benchmark{}
	for _, b := range oldSnap.Results {
		oldBy[b.Name] = b
	}
	fmt.Fprintf(w, "%-28s %14s %14s %8s   %s\n", "benchmark", "old", "new", "delta", "metric")
	ok = true
	for _, nb := range newSnap.Results {
		ob, found := oldBy[nb.Name]
		if !found {
			fmt.Fprintf(w, "%-28s %14s %14s %8s   (new benchmark)\n", nb.Name, "-", "-", "-")
			continue
		}
		// Throughput gate: MB/s when both report it (higher is
		// better), else ns/op (lower is better).
		var delta float64
		var line string
		if ob.MBPerS > 0 && nb.MBPerS > 0 {
			delta = nb.MBPerS/ob.MBPerS - 1
			line = fmt.Sprintf("%-28s %11.2f MB/s %11.2f MB/s %+7.1f%%   throughput", nb.Name, ob.MBPerS, nb.MBPerS, 100*delta)
		} else {
			delta = ob.NsPerOp/nb.NsPerOp - 1 // speedup, so sign matches MB/s case
			line = fmt.Sprintf("%-28s %11.0f ns %13.0f ns %+7.1f%%   speed", nb.Name, ob.NsPerOp, nb.NsPerOp, 100*delta)
		}
		flag := ""
		if delta < -regressionLimit {
			flag = "  << REGRESSION"
			ok = false
		}
		fmt.Fprintf(w, "%s%s\n", line, flag)
		if ob.AllocsPerOp > 0 && nb.AllocsPerOp > 0 {
			fmt.Fprintf(w, "%-28s %14.0f %14.0f %+7.1f%%   allocs/op\n",
				"", ob.AllocsPerOp, nb.AllocsPerOp, 100*(nb.AllocsPerOp/ob.AllocsPerOp-1))
		}
		if ob.BytesPerOp > 0 && nb.BytesPerOp > 0 {
			fmt.Fprintf(w, "%-28s %14.0f %14.0f %+7.1f%%   B/op\n",
				"", ob.BytesPerOp, nb.BytesPerOp, 100*(nb.BytesPerOp/ob.BytesPerOp-1))
		}
	}
	for _, ob := range oldSnap.Results {
		found := false
		for _, nb := range newSnap.Results {
			if nb.Name == ob.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(w, "%-28s %14s %14s %8s   (removed)\n", ob.Name, "-", "-", "-")
		}
	}
	if !ok {
		fmt.Fprintf(w, "\nFAIL: throughput regression exceeds %.0f%%\n", 100*regressionLimit)
	}
	return ok, nil
}
