package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"os"

	"classpack"
	"classpack/internal/archive"
	"classpack/internal/castore"
	"classpack/internal/classfile"
	"classpack/internal/serve"
	"classpack/internal/serve/client"
	"classpack/internal/synth"
)

// runSmoke is the end-to-end self-check behind `make serve-smoke`: it
// starts a real jpackd on a loopback port with a throwaway cache,
// drives it through the client with a synthetic corpus, and fails
// unless the cache hit, the digest fetch, and the unpack round-trip all
// check out.
func runSmoke(cfg serve.Config, scale float64) error {
	p, err := synth.ProfileByName("213_javac")
	if err != nil {
		return err
	}
	cfs, err := synth.Generate(p, scale)
	if err != nil {
		return err
	}
	members := make([]archive.File, 0, len(cfs)+1)
	for _, cf := range cfs {
		data, err := classfile.Write(cf)
		if err != nil {
			return err
		}
		members = append(members, archive.File{Name: cf.ThisClassName() + ".class", Data: data})
	}
	members = append(members, archive.File{Name: "META-INF/MANIFEST.MF", Data: []byte("Manifest-Version: 1.0\n")})
	jar, err := archive.WriteJar(members)
	if err != nil {
		return err
	}

	cacheDir, err := os.MkdirTemp("", "jpackd-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)
	st, err := castore.Open(cacheDir, 0)
	if err != nil {
		return err
	}
	cfg.Store = st

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve.New(cfg).Serve(ctx, ln) }()
	defer func() { cancel(); <-done }()
	c := client.New("http://"+ln.Addr().String(), nil)
	log.Printf("smoke: %d synthetic classes (%d-byte jar) against %s", len(cfs), len(jar), ln.Addr())

	first, err := c.Pack(ctx, jar)
	if err != nil {
		return fmt.Errorf("smoke pack: %w", err)
	}
	if first.Cache != "miss" {
		return fmt.Errorf("smoke: first pack was %q, want miss", first.Cache)
	}
	second, err := c.Pack(ctx, jar)
	if err != nil {
		return fmt.Errorf("smoke repack: %w", err)
	}
	if second.Cache != "hit" || !bytes.Equal(second.Packed, first.Packed) {
		return fmt.Errorf("smoke: second pack cache=%q, identical=%t; want a byte-identical hit",
			second.Cache, bytes.Equal(second.Packed, first.Packed))
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	if m["encodes_total"] != 1 || m["cache_hits"] != 1 {
		return fmt.Errorf("smoke: metrics encodes=%d hits=%d, want 1/1", m["encodes_total"], m["cache_hits"])
	}

	fetched, err := c.Archive(ctx, first.Digest)
	if err != nil {
		return fmt.Errorf("smoke archive fetch: %w", err)
	}
	if !bytes.Equal(fetched, first.Packed) {
		return fmt.Errorf("smoke: GET /archive/%s differs from the pack response", first.Digest[:12])
	}
	files, err := classpack.Unpack(fetched)
	if err != nil {
		return fmt.Errorf("smoke: fetched archive does not unpack: %w", err)
	}
	if len(files) != len(cfs) {
		return fmt.Errorf("smoke: fetched archive holds %d classes, want %d", len(files), len(cfs))
	}

	rebuilt, err := c.Unpack(ctx, fetched)
	if err != nil {
		return fmt.Errorf("smoke unpack: %w", err)
	}
	outMembers, err := archive.ReadJar(rebuilt)
	if err != nil {
		return err
	}
	if len(outMembers) != len(cfs) {
		return fmt.Errorf("smoke: rebuilt jar holds %d members, want %d", len(outMembers), len(cfs))
	}
	vr, err := c.Verify(ctx, rebuilt, false)
	if err != nil {
		return fmt.Errorf("smoke verify: %w", err)
	}
	if vr.Classes != len(cfs) || len(vr.Invalid) != 0 {
		return fmt.Errorf("smoke: verify of rebuilt jar: %d classes, %d invalid", vr.Classes, len(vr.Invalid))
	}

	log.Printf("smoke: ok — %d classes, %d -> %d bytes (%.1f%%), cache hit, digest %s round-trips",
		len(cfs), len(jar), len(first.Packed),
		100*float64(len(first.Packed))/float64(len(jar)), first.Digest[:12])
	return nil
}
