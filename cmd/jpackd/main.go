// Command jpackd is the streaming pack/unpack HTTP daemon: it serves
// the classpack pipeline over HTTP with a crash-safe content-addressed
// archive cache (recovered by an fsck sweep at startup), deadline-aware
// admission control with 429 + Retry-After load shedding, singleflight
// coalescing of identical packs, degraded-mode operation on cache-volume
// faults, request-size limits, per-request deadlines, expvar metrics,
// and graceful drain on SIGTERM.
//
// Endpoints:
//
//	POST /pack                        jar in, packed archive out (cached by digest)
//	POST /unpack                      packed archive in, jar out
//	POST /verify[?deep=1]             jar in, per-class verification report out
//	GET  /archive/{digest}            re-serve a previously packed artifact
//	GET  /archive/{digest}?classes=P  subset jar of classes matching pattern P
//	GET  /archive/{digest}/class/{N}  one class file, decoded lazily (v3 archives
//	                                  decode only the chunk containing N)
//	GET  /metrics                     expvar counters (JSON)
//	GET  /healthz                     liveness probe: {"status":"ok"|"degraded"}
//
// Usage:
//
//	jpackd [-addr :8750] [-cache DIR|off] [-cache-max BYTES] [-no-fsck]
//	       [-max-request BYTES] [-timeout D] [-drain D] [-jobs N] [-j N]
//	       [-queue N] [-mem-budget BYTES] [-retry-after D] [-probe-interval D]
//	       [-scheme NAME] [-chunk N] [-no-stackstate] [-no-gzip] [-preload]
//	       [-max-decoded-bytes N] [-max-classes N] [-pprof]
//	jpackd -smoke [-smoke-scale F]   # self-check against a synthetic corpus
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"classpack"
	"classpack/internal/castore"
	"classpack/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("jpackd: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jpackd", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8750", "listen address")
		cacheDir   = fs.String("cache", "", "archive cache directory (default: user cache dir; \"off\" disables)")
		cacheMax   = fs.Int64("cache-max", 1<<30, "archive cache size cap in bytes (0 = unlimited)")
		maxReq     = fs.Int64("max-request", serve.DefaultMaxRequestBytes, "request body size cap in bytes")
		timeout    = fs.Duration("timeout", serve.DefaultRequestTimeout, "per-request deadline, including job-queue wait")
		drain      = fs.Duration("drain", serve.DefaultDrainTimeout, "shutdown drain bound for in-flight requests")
		jobs       = fs.Int("jobs", 0, "max concurrent encode jobs (0 = GOMAXPROCS)")
		queue      = fs.Int("queue", 0, "max requests waiting for a job slot before 429 shedding (0 = 4x jobs, negative = no queueing)")
		memBudget  = fs.Int64("mem-budget", 0, "cap on admitted request bytes across job slots; excess sheds 429 (0 = unlimited)")
		retryAfter = fs.Duration("retry-after", serve.DefaultRetryAfterHint, "Retry-After floor on shed responses")
		probeEvery = fs.Duration("probe-interval", serve.DefaultProbeInterval, "recovery probe interval while the cache volume is degraded")
		noFsck     = fs.Bool("no-fsck", false, "skip the startup cache recovery sweep (temp removal + object re-verification)")
		workers    = fs.Int("j", 0, "worker pool per job (0 = all cores)")
		scheme     = fs.String("scheme", "mtf-full", "reference coding scheme")
		chunk      = fs.Int("chunk", 0, "classes per chunk: positive packs the version-3 random-access layout (0 = monolithic version 2)")
		noSS       = fs.Bool("no-stackstate", false, "disable §7.1 stack-state coding")
		noGz       = fs.Bool("no-gzip", false, "disable per-stream DEFLATE")
		preload    = fs.Bool("preload", false, "seed reference pools with the standard table")
		maxDecoded = fs.Int64("max-decoded-bytes", 0, "decoded-size cap per /unpack request (0 = 1 GiB default)")
		maxClasses = fs.Int("max-classes", 0, "class-count cap per /unpack request (0 = 1<<20 default)")
		pprofOn    = fs.Bool("pprof", false, "expose the runtime profiler on GET /debug/pprof/ (trusted operators only)")
		smoke      = fs.Bool("smoke", false, "start on a loopback port, pack a synthetic corpus through the client, check the digest round-trip, and exit")
		smokeScale = fs.Float64("smoke-scale", 0.05, "synthetic corpus scale for -smoke")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := classpack.SchemeByName(*scheme)
	if err != nil {
		return err
	}
	opts := classpack.DefaultOptions()
	opts.Scheme = s
	opts.StackState = !*noSS
	opts.Compress = !*noGz
	opts.Preload = *preload
	opts.ChunkClasses = *chunk
	opts.Concurrency = *workers
	opts.MaxDecodedBytes = *maxDecoded
	opts.MaxClassCount = *maxClasses
	cfg := serve.Config{
		Options:         opts,
		MaxRequestBytes: *maxReq,
		RequestTimeout:  *timeout,
		DrainTimeout:    *drain,
		MaxJobs:         *jobs,
		MaxQueue:        *queue,
		MemoryBudget:    *memBudget,
		RetryAfterHint:  *retryAfter,
		ProbeInterval:   *probeEvery,
		EnablePprof:     *pprofOn,
	}
	if *pprofOn {
		log.Print("pprof endpoints enabled at /debug/pprof/")
	}

	if *smoke {
		return runSmoke(cfg, *smokeScale)
	}

	dir := *cacheDir
	if dir == "" {
		base, err := os.UserCacheDir()
		if err != nil {
			return fmt.Errorf("resolving default cache dir: %w (pass -cache DIR or -cache off)", err)
		}
		dir = filepath.Join(base, "jpackd")
	}
	if dir != "off" {
		st, err := castore.Open(dir, *cacheMax)
		if err != nil {
			return fmt.Errorf("opening cache: %w", err)
		}
		if !*noFsck {
			// Startup recovery: sweep write debris from any earlier crash
			// and re-verify every object, so the daemon never starts on a
			// corrupt cache. The sweep assumes this daemon owns the
			// directory exclusively — -no-fsck for shared-cache setups.
			rep, err := st.Fsck()
			if err != nil {
				return fmt.Errorf("cache recovery sweep: %w", err)
			}
			if rep.TempsRemoved > 0 || rep.CorruptRemoved > 0 {
				log.Printf("cache recovery: removed %d orphaned temp files, %d corrupt objects",
					rep.TempsRemoved, rep.CorruptRemoved)
			}
		}
		cfg.Store = st
		log.Printf("archive cache at %s (%d objects, %d bytes, cap %d)",
			dir, st.Len(), st.Size(), *cacheMax)
	} else {
		log.Print("archive cache disabled")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	log.Printf("listening on %s", ln.Addr())
	start := time.Now()
	if err := serve.New(cfg).Serve(ctx, ln); err != nil {
		return err
	}
	log.Printf("drained and stopped after %v", time.Since(start).Round(time.Second))
	return nil
}
