package main

import "testing"

// TestSmoke runs the same end-to-end self-check `make serve-smoke`
// does, at a small corpus scale.
func TestSmoke(t *testing.T) {
	if err := run([]string{"-smoke", "-smoke-scale", "0.02"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadScheme(t *testing.T) {
	if err := run([]string{"-scheme", "nope", "-smoke"}); err == nil {
		t.Fatal("bad scheme accepted")
	}
}
