// Command mjc compiles MiniJava source to Java class files, optionally
// runs the program on the built-in interpreter, and optionally packs the
// result with the classpack wire format.
//
// Usage:
//
//	mjc [-d outdir] [-pkg com/example] [-run] [-pack out.cjp] program.java
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"classpack"
	"classpack/internal/classfile"
	"classpack/internal/minijava"
)

func main() {
	dir := flag.String("d", ".", "output directory for .class files")
	pkg := flag.String("pkg", "", "place generated classes into this package")
	run := flag.Bool("run", false, "run the program on the built-in interpreter")
	packOut := flag.String("pack", "", "also pack the classes into this archive")
	noEmit := flag.Bool("noemit", false, "do not write .class files")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mjc [-d dir] [-pkg p] [-run] [-pack out.cjp] program.java")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	cfs, err := minijava.Compile(string(src), minijava.CompileOptions{
		Package:    *pkg,
		SourceFile: filepath.Base(flag.Arg(0)),
	})
	if err != nil {
		fail(err)
	}
	var raw [][]byte
	for _, cf := range cfs {
		data, err := classfile.Write(cf)
		if err != nil {
			fail(err)
		}
		raw = append(raw, data)
		if *noEmit {
			continue
		}
		path := filepath.Join(*dir, filepath.FromSlash(cf.ThisClassName())+".class")
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			fail(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", path, len(data))
	}
	if *packOut != "" {
		packed, err := classpack.Pack(raw, nil)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*packOut, packed, 0o644); err != nil {
			fail(err)
		}
		total := 0
		for _, d := range raw {
			total += len(d)
		}
		fmt.Fprintf(os.Stderr, "packed %d classes: %d -> %d bytes\n", len(raw), total, len(packed))
	}
	if *run {
		interp := minijava.NewInterp(os.Stdout, cfs)
		if err := interp.RunMain(cfs[0].ThisClassName()); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mjc:", err)
	os.Exit(1)
}
