// Command benchtables regenerates every table and figure of the paper's
// evaluation section over the synthetic corpora.
//
// Usage:
//
//	benchtables [-scale 1.0] [-table N | -figure2 | -all]
//
// Tables 1–8 correspond to the paper's numbering; -figure2 emits the CSV
// series behind Figure 2 (compression ratio vs jar size).
package main

import (
	"flag"
	"fmt"
	"os"

	"classpack/internal/bench"
)

func main() {
	scale := flag.Float64("scale", 1.0, "corpus scale factor (1.0 = the paper's sizes)")
	table := flag.Int("table", 0, "print one table (1-8)")
	fig2 := flag.Bool("figure2", false, "emit the Figure 2 CSV series")
	all := flag.Bool("all", false, "print every table and the figure")
	flag.Parse()

	if *scale <= 0 || *scale > 4 {
		fmt.Fprintln(os.Stderr, "benchtables: -scale must be in (0, 4]")
		os.Exit(2)
	}
	if !*fig2 && *table == 0 {
		*all = true
	}
	run := func(n int) error {
		switch n {
		case 1:
			rows, err := bench.Table1(*scale)
			if err != nil {
				return err
			}
			bench.RenderTable1(os.Stdout, rows)
		case 2:
			t, err := bench.Table2(*scale)
			if err != nil {
				return err
			}
			bench.RenderTable2(os.Stdout, t)
		case 3:
			rows, err := bench.Table3(*scale)
			if err != nil {
				return err
			}
			bench.RenderTable3(os.Stdout, rows)
		case 4:
			t, err := bench.Table4(*scale)
			if err != nil {
				return err
			}
			bench.RenderTable4(os.Stdout, t)
		case 5:
			t, err := bench.Table5(*scale)
			if err != nil {
				return err
			}
			bench.RenderTable5(os.Stdout, t)
		case 6:
			rows, err := bench.Table6(*scale)
			if err != nil {
				return err
			}
			bench.RenderTable6(os.Stdout, rows)
		case 7:
			rows, err := bench.Table7(*scale)
			if err != nil {
				return err
			}
			bench.RenderTable7(os.Stdout, rows)
		case 8:
			rows, err := bench.Table8(*scale)
			if err != nil {
				return err
			}
			bench.RenderTable8(os.Stdout, rows)
		default:
			return fmt.Errorf("no table %d", n)
		}
		return nil
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
	if *all {
		for n := 1; n <= 8; n++ {
			if err := run(n); err != nil {
				fail(err)
			}
			fmt.Println()
		}
		rows, err := bench.Figure2(*scale)
		if err != nil {
			fail(err)
		}
		bench.RenderFigure2(os.Stdout, rows)
		return
	}
	if *table != 0 {
		if err := run(*table); err != nil {
			fail(err)
		}
	}
	if *fig2 {
		rows, err := bench.Figure2(*scale)
		if err != nil {
			fail(err)
		}
		bench.RenderFigure2(os.Stdout, rows)
	}
}
