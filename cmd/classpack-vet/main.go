// Command classpack-vet runs classpack's custom static-analysis suite
// over the module: the four analyzers that prove the decoder-safety
// invariants (decodebound, nopanic, corrupterr, poolbalance). It is
// wired into `make lint` (and so `make verify` and CI); any finding
// fails the build.
//
// Usage:
//
//	classpack-vet [-list] [./...]
//
// The package pattern is accepted for familiarity with go vet but the
// suite always scans the whole module containing the working
// directory. Suppress an intentional finding with a
// `//classpack:vet-allow <analyzer> <reason>` comment on or above the
// flagged line (or in the enclosing declaration's doc comment); the
// reason is mandatory.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"classpack/internal/analysis"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	list := false
	for _, arg := range args {
		switch arg {
		case "-list", "--list":
			list = true
		case "./...", ".":
			// accepted for go-vet muscle memory; the scan is always
			// module-wide
		case "-h", "-help", "--help":
			fmt.Fprintln(os.Stderr, "usage: classpack-vet [-list] [./...]")
			return 2
		default:
			fmt.Fprintf(os.Stderr, "classpack-vet: unknown argument %q\n", arg)
			return 2
		}
	}
	if list {
		for _, c := range analysis.Suite() {
			fmt.Printf("%-12s %s\n", c.Analyzer.Name, c.Analyzer.Doc)
		}
		return 0
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "classpack-vet: locating go.mod: %v\n", err)
		return 1
	}
	diags, err := analysis.Vet(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "classpack-vet: %v\n", err)
		return 1
	}
	analysis.TrimDiagnosticPaths(diags, root)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "classpack-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// moduleRoot climbs from the working directory to the go.mod holder.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
