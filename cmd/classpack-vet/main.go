// Command classpack-vet runs classpack's custom static-analysis suite
// over the module: nine analyzers in two generations — the
// decoder-safety proofs (decodebound, nopanic, corrupterr, poolbalance)
// and the daemon-layer concurrency checks (ctxflow, guardedfield,
// goroutineleak, vfsdirect, balancegen). It is wired into `make lint`
// (and so `make verify` and CI); any finding fails the build.
//
// Usage:
//
//	classpack-vet [-list] [-timing] [-budget <duration>] [./...]
//
// -timing prints a per-analyzer wall-time table (load+typecheck
// included) after the scan. -budget fails the run if the suite's total
// wall time exceeds the given duration — CI pins 30s so the lint gate
// cannot quietly grow past what a pre-push hook tolerates. The budget
// is measured inside the tool, so `go run` compilation time is not
// charged against it.
//
// The package pattern is accepted for familiarity with go vet but the
// suite always scans the whole module containing the working
// directory. Suppress an intentional finding with a
// `//classpack:vet-allow <analyzer> <reason>` comment on or above the
// flagged line (or in the enclosing declaration's doc comment); the
// reason is mandatory, and a directive that no longer suppresses
// anything is itself a finding.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"classpack/internal/analysis"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	list := false
	timing := false
	var budget time.Duration
	usage := func() { fmt.Fprintln(os.Stderr, "usage: classpack-vet [-list] [-timing] [-budget <duration>] [./...]") }
	for i := 0; i < len(args); i++ {
		switch arg := args[i]; arg {
		case "-list", "--list":
			list = true
		case "-timing", "--timing":
			timing = true
		case "-budget", "--budget":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "classpack-vet: -budget needs a duration (e.g. -budget 30s)")
				return 2
			}
			i++
			d, err := time.ParseDuration(args[i])
			if err != nil || d <= 0 {
				fmt.Fprintf(os.Stderr, "classpack-vet: bad -budget %q: want a positive duration\n", args[i])
				return 2
			}
			budget = d
		case "./...", ".":
			// accepted for go-vet muscle memory; the scan is always
			// module-wide
		case "-h", "-help", "--help":
			usage()
			return 2
		default:
			fmt.Fprintf(os.Stderr, "classpack-vet: unknown argument %q\n", arg)
			usage()
			return 2
		}
	}
	if list {
		for _, c := range analysis.Suite() {
			fmt.Printf("%-14s %s\n", c.Analyzer.Name, c.Analyzer.Doc)
		}
		return 0
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "classpack-vet: locating go.mod: %v\n", err)
		return 1
	}
	diags, timings, err := analysis.VetTimed(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "classpack-vet: %v\n", err)
		return 1
	}
	var total time.Duration
	for _, t := range timings {
		total += t.Elapsed
	}
	if timing {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "%-16s %8.3fs\n", t.Name, t.Elapsed.Seconds())
		}
		fmt.Fprintf(os.Stderr, "%-16s %8.3fs\n", "total", total.Seconds())
	}
	analysis.TrimDiagnosticPaths(diags, root)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "classpack-vet: %d finding(s)\n", len(diags))
		return 1
	}
	if budget > 0 && total > budget {
		fmt.Fprintf(os.Stderr, "classpack-vet: suite took %v, over the %v budget — profile with -timing and trim the slow analyzer\n",
			total.Round(time.Millisecond), budget)
		return 1
	}
	return 0
}

// moduleRoot climbs from the working directory to the go.mod holder.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
