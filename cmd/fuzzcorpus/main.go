// Command fuzzcorpus regenerates the checked-in fuzz seed corpora under
// the per-package testdata/fuzz directories from internal/synth packs.
// Run it from the repo root after changing the wire format:
//
//	go run ./cmd/fuzzcorpus
//
// The files give `go test -fuzz` real archive structure to mutate from
// the first exec, without each harness having to re-pack a corpus.
package main

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"classpack"
	"classpack/internal/classfile"
	"classpack/internal/core"
	"classpack/internal/custom"
	"classpack/internal/faultinject"
	"classpack/internal/jazz"
	"classpack/internal/streams"
	"classpack/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fuzzcorpus:", err)
		os.Exit(1)
	}
}

// corpusFile writes one seed in the `go test fuzz v1` encoding; each
// argument becomes one []byte line.
func corpusFile(dir, name string, args ...[]byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	out := "go test fuzz v1\n"
	for _, a := range args {
		out += "[]byte(" + strconv.Quote(string(a)) + ")\n"
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(out), 0o644)
}

func classes(profile string, scale float64) ([]*classfile.ClassFile, [][]byte, error) {
	p, err := synth.ProfileByName(profile)
	if err != nil {
		return nil, nil, err
	}
	cfs, err := synth.GenerateStripped(p, scale)
	if err != nil {
		return nil, nil, err
	}
	raw := make([][]byte, len(cfs))
	for i, cf := range cfs {
		if raw[i], err = classfile.Write(cf); err != nil {
			return nil, nil, err
		}
	}
	return cfs, raw, nil
}

func marshalDict(dict []custom.Pair) []byte {
	out := make([]byte, 0, 5*len(dict))
	for _, p := range dict {
		out = binary.LittleEndian.AppendUint16(out, uint16(p.First))
		out = binary.LittleEndian.AppendUint16(out, uint16(p.Second))
		b := byte(0)
		if p.Skip {
			b = 1
		}
		out = append(out, b)
	}
	return out
}

func run() error {
	profiles := []string{"209_db", "Hanoi_jax"}

	for _, profile := range profiles {
		cfs, raw, err := classes(profile, 0.05)
		if err != nil {
			return err
		}

		// FuzzUnpack: full archives, default options and the
		// uncompressed/no-stackstate layout.
		packed, err := classpack.Pack(raw, nil)
		if err != nil {
			return err
		}
		if err := corpusFile("testdata/fuzz/FuzzUnpack", "seed-"+profile, packed); err != nil {
			return err
		}
		plain := classpack.DefaultOptions()
		plain.StackState = false
		plain.Compress = false
		packedPlain, err := classpack.Pack(raw, &plain)
		if err != nil {
			return err
		}
		if err := corpusFile("testdata/fuzz/FuzzUnpack", "seed-"+profile+"-plain", packedPlain); err != nil {
			return err
		}

		// FuzzSalvage: a pristine archive, deterministically damaged
		// mutants (one per fault class, seeded by the archive length so
		// regeneration is stable), and the legacy checksum-free
		// version-1 layout.
		if err := corpusFile("testdata/fuzz/FuzzSalvage", "seed-"+profile, packed); err != nil {
			return err
		}
		plan := faultinject.NewPlan(int64(len(packed)))
		for i := 0; i < 4; i++ {
			mut := plan.Next(len(packed)).Apply(packed)
			name := fmt.Sprintf("seed-%s-fault%d", profile, i)
			if err := corpusFile("testdata/fuzz/FuzzSalvage", name, mut); err != nil {
				return err
			}
		}
		// Version-3 chunked archives: clean seeds for unpack, salvage, and
		// the index reader, plus deterministic footer/index corruptions so
		// the index fuzzer starts inside its error paths.
		chunked := classpack.DefaultOptions()
		chunked.ChunkClasses = 2
		packedV3, err := classpack.Pack(raw, &chunked)
		if err != nil {
			return err
		}
		for _, target := range []string{"FuzzUnpack", "FuzzSalvage", "FuzzChunkIndex"} {
			if err := corpusFile("testdata/fuzz/"+target, "seed-"+profile+"-v3", packedV3); err != nil {
				return err
			}
		}
		planV3 := faultinject.NewPlan(int64(len(packedV3)))
		for i := 0; i < 4; i++ {
			mut := planV3.Next(len(packedV3)).Apply(packedV3)
			name := fmt.Sprintf("seed-%s-v3-fault%d", profile, i)
			if err := corpusFile("testdata/fuzz/FuzzSalvage", name, mut); err != nil {
				return err
			}
		}
		flip := faultinject.BitFlip{Off: len(packedV3) - 10, Bit: 1}
		if err := corpusFile("testdata/fuzz/FuzzChunkIndex",
			"seed-"+profile+"-v3-footer", flip.Apply(packedV3)); err != nil {
			return err
		}
		if err := corpusFile("testdata/fuzz/FuzzChunkIndex",
			"seed-"+profile+"-v3-trunc", packedV3[:len(packedV3)-7]); err != nil {
			return err
		}

		// FuzzDelta: a real CJPD patch between the chunked archive and a
		// ~20%-mutated version bump of it, plus deterministic mutants so
		// the fuzzer starts inside the patch validation paths. The harness
		// applies seeds against its own fixed old archive, so mismatching
		// digests here still exercise ErrDeltaMismatch.
		bumped, _, err := synth.MutateClasses(raw, 0.2, int64(len(packedV3)))
		if err != nil {
			return err
		}
		bumpedV3, err := classpack.Pack(bumped, &chunked)
		if err != nil {
			return err
		}
		patch, err := classpack.Diff(packedV3, bumpedV3, nil)
		if err != nil {
			return err
		}
		if err := corpusFile("testdata/fuzz/FuzzDelta", "seed-"+profile, patch); err != nil {
			return err
		}
		planPatch := faultinject.NewPlan(int64(len(patch)))
		for i := 0; i < 4; i++ {
			mut := planPatch.Next(len(patch)).Apply(patch)
			name := fmt.Sprintf("seed-%s-fault%d", profile, i)
			if err := corpusFile("testdata/fuzz/FuzzDelta", name, mut); err != nil {
				return err
			}
		}

		legacy, err := core.PackVersion(cfs, core.DefaultOptions(), core.Version1)
		if err != nil {
			return err
		}
		if err := corpusFile("testdata/fuzz/FuzzSalvage", "seed-"+profile+"-v1", legacy); err != nil {
			return err
		}
		if err := corpusFile("testdata/fuzz/FuzzUnpack", "seed-"+profile+"-v1", legacy); err != nil {
			return err
		}

		// FuzzJazzDecode: the §9 Jazz competitor's own wire format.
		jz, err := jazz.Pack(cfs)
		if err != nil {
			return err
		}
		if err := corpusFile("internal/jazz/testdata/fuzz/FuzzJazzDecode", "seed-"+profile, jz); err != nil {
			return err
		}

		// FuzzReadClassFile: individual class files.
		for i, data := range raw {
			if i >= 3 {
				break
			}
			name := fmt.Sprintf("seed-%s-%d", profile, i)
			if err := corpusFile("internal/classfile/testdata/fuzz/FuzzReadClassFile", name, data); err != nil {
				return err
			}
		}

		// FuzzStreamsReader: the raw stream container from a real pack
		// (the archive body after the 6-byte header), in both the
		// checked (per-stream CRC + trailer) and unchecked layouts.
		if len(packed) > 6 {
			if err := corpusFile("internal/streams/testdata/fuzz/FuzzStreamsReader",
				"seed-"+profile, packed[6:]); err != nil {
				return err
			}
		}
		if len(legacy) > 6 {
			if err := corpusFile("internal/streams/testdata/fuzz/FuzzStreamsReader",
				"seed-"+profile+"-unchecked", legacy[6:]); err != nil {
				return err
			}
		}
	}

	// FuzzCustomDecode: a dictionary and rewritten sequence from a real
	// §7.2 greedy compression run, in the harness's 5-byte dict encoding.
	seqs := [][]byte{nil, nil}
	for i := 0; i < 60; i++ {
		seqs[0] = append(seqs[0], 1, 2, 3)
		seqs[1] = append(seqs[1], 9, 9, 4, 7)
	}
	work, dict := custom.Compress(seqs, 200, 8)
	for i, seq := range work {
		name := fmt.Sprintf("seed-compress-%d", i)
		if err := corpusFile("internal/custom/testdata/fuzz/FuzzCustomDecode",
			name, marshalDict(dict), custom.Serialize(seq)); err != nil {
			return err
		}
	}

	// An empty container and a tiny hand-rolled one for the streams walker.
	w := streams.NewWriter()
	w.Stream("seed.ints").Uint(1 << 20)
	w.Stream("seed.raw").Write([]byte("seed"))
	small, err := w.Finish(false)
	if err != nil {
		return err
	}
	return corpusFile("internal/streams/testdata/fuzz/FuzzStreamsReader", "seed-small", small)
}
