package classpack_test

import (
	"fmt"
	"log"

	"classpack"
	"classpack/internal/classfile"
	"classpack/internal/minijava"
)

// compileDemo builds two small classfiles to feed the examples.
func compileDemo() [][]byte {
	cfs, err := minijava.Compile(`
class Main { public static void main(String[] a) { System.out.println(new Adder().add(2, 3)); } }
class Adder { public int add(int x, int y) { return x + y; } }
`, minijava.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var files [][]byte
	for _, cf := range cfs {
		data, err := classfile.Write(cf)
		if err != nil {
			log.Fatal(err)
		}
		files = append(files, data)
	}
	return files
}

func ExamplePack() {
	files := compileDemo()
	packed, err := classpack.Pack(files, nil)
	if err != nil {
		log.Fatal(err)
	}
	out, err := classpack.Unpack(packed)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range out {
		fmt.Println(f.Name)
	}
	// Output:
	// Main.class
	// Adder.class
}

func ExampleUnpackEach() {
	packed, err := classpack.Pack(compileDemo(), nil)
	if err != nil {
		log.Fatal(err)
	}
	// Classes stream out one at a time, in archive order (§11: an eager
	// loader can define each one as it arrives).
	err = classpack.UnpackEach(packed, func(f classpack.File) error {
		fmt.Println("arrived:", f.Name)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// arrived: Main.class
	// arrived: Adder.class
}

func ExampleStrip() {
	files := compileDemo()
	stripped, err := classpack.Strip(files[0])
	if err != nil {
		log.Fatal(err)
	}
	again, err := classpack.Strip(stripped)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("idempotent:", string(stripped) == string(again))
	// Output:
	// idempotent: true
}

func ExampleOptions() {
	files := compileDemo()
	// The paper's §5.1 design space is explorable per archive.
	opts := classpack.Options{
		Scheme:     classpack.SchemeMTFFull,
		StackState: true,
		Compress:   true,
		Preload:    true, // §14 extension: seed pools with common JDK names
	}
	packed, err := classpack.Pack(files, &opts)
	if err != nil {
		log.Fatal(err)
	}
	out, err := classpack.Unpack(packed) // options travel in the header
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(out), "classes")
	// Output:
	// 2 classes
}
